"""One test per lint rule, against planted-violation fixture files.

The fixtures live under ``fixtures/`` — the ``sim/`` subdirectory exists
so path-scoped rules (no-wallclock, unit-suffix) see an in-scope path,
and ``fixtures/core/rng.py`` exercises the no-bare-random exemption.
"""

from pathlib import Path

from repro.devtools.lint import REGISTRY, LintEngine, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def lint_fixture(name, rules=None):
    # Lint under the fixture's *logical* path ("sim/wallclock.py"), not its
    # on-disk location: fixtures plant src-tree violations, and the rules
    # deliberately relax under a real tests/ or benchmarks/ directory.
    engine = LintEngine(rules)
    root = FIXTURES / name
    if root.is_dir():
        violations = []
        for path in sorted(root.rglob("*.py")):
            violations.extend(
                engine.lint_source(path.read_text(), path.relative_to(FIXTURES))
            )
        return sorted(violations)
    return engine.lint_source(root.read_text(), name)


def positions(violations, rule_id):
    return [(v.line, v.col) for v in violations if v.rule_id == rule_id]


def test_registry_has_all_rules():
    ids = set(REGISTRY.rules)
    assert ids >= {
        "no-bare-random",
        "no-wallclock",
        "no-float-eq",
        "unit-suffix",
        "mutable-default-arg",
        "no-bare-subprocess-result",
        "no-deep-harness-import",
    }


def test_no_bare_random():
    violations = lint_fixture("bare_random.py")
    assert positions(violations, "no-bare-random") == [
        (2, 1),  # import random
        (4, 1),  # from random import choice
        (8, 12),  # random.randint(...)
        (12, 12),  # np.random.uniform()
    ]
    assert all(v.rule_id == "no-bare-random" for v in violations)


def test_no_bare_random_exempts_core_rng():
    violations = lint_fixture("core/rng.py")
    assert violations == []


def test_no_wallclock():
    violations = lint_fixture("sim/wallclock.py")
    assert positions(violations, "no-wallclock") == [
        (7, 12),  # time.time()
        (11, 12),  # datetime.now()
    ]


def test_no_wallclock_scoped_to_simulated_packages(tmp_path):
    # The same source outside sim/core/protocols is fine (harness code
    # legitimately timestamps runs).
    src = (FIXTURES / "sim" / "wallclock.py").read_text()
    out = tmp_path / "harness" / "wallclock.py"
    out.parent.mkdir()
    out.write_text(src)
    assert lint_paths([str(out)]) == []


def test_no_float_eq():
    violations = lint_fixture("float_eq.py")
    assert positions(violations, "no-float-eq") == [
        (5, 8),  # now == deadline_s
        (7, 8),  # rate_bps != 1.5
    ]
    # float('inf') sentinel on line 9 is allowed.
    assert all(v.line != 9 for v in violations)


def test_unit_suffix():
    violations = lint_fixture("sim/unit_suffix.py")
    assert positions(violations, "unit-suffix") == [
        (5, 24),  # __init__(self, rate, ...)
        (10, 17),  # set_timeout(timeout)
    ]
    # _private_ok's 'delay' and the allowed names are not flagged.
    flagged = {v.message.split("'")[1] for v in violations}
    assert flagged == {"rate", "timeout"}


def test_unit_suffix_dataclass_fields():
    violations = lint_fixture("sim/unit_suffix_fields.py")
    assert all(v.rule_id == "unit-suffix" for v in violations)
    flagged = {v.message.split("'")[1] for v in violations}
    assert flagged == {"at", "bandwidth"}
    # Suffixed, allowed, private and un-annotated names survive; the
    # non-dataclass body is exempt entirely.
    assert all("StepSpec" in v.message for v in violations)


def test_unit_suffix_fields_scoped_to_scenarios_file():
    engine = LintEngine()
    src = "from dataclasses import dataclass\n\n@dataclass\nclass S:\n    at: float\n"
    in_scope = engine.lint_source(src, "harness/scenarios.py")
    assert [v.rule_id for v in in_scope] == ["unit-suffix"]
    # Other harness modules keep the old scope (sim/ and core/ only).
    assert engine.lint_source(src, "harness/runner.py") == []


def test_mutable_default_arg():
    violations = lint_fixture("mutable_default.py")
    assert positions(violations, "mutable-default-arg") == [
        (4, 19),  # items=[]
        (8, 17),  # table={}
        (8, 26),  # tags=set()
    ]


def test_no_bare_subprocess_result():
    violations = lint_fixture("bare_result.py")
    # Line 9 is suppressed with a rule-precise noqa.
    assert positions(violations, "no-bare-subprocess-result") == [
        (5, 13),  # future.result() in the comprehension
        (10, 12),  # future.result() after the suppressed line
    ]


def test_no_bare_subprocess_result_exempts_supervise():
    engine = LintEngine()
    src = "def take(future):\n    return future.result()\n"
    assert engine.lint_source(src, "harness/supervise.py") == []
    flagged = engine.lint_source(src, "harness/parallel.py")
    assert [v.rule_id for v in flagged] == ["no-bare-subprocess-result"]


def test_no_deep_harness_import():
    engine = LintEngine()
    src = (
        "from repro.harness.runner import run_flows\n"
        "import repro.harness.cache\n"
        "from repro.harness import run_flows\n"
        "from repro import run_pair\n"
        "from repro.obs import CollectingTracer\n"
    )
    violations = engine.lint_source(src, "examples/demo.py")
    # Only the first two reach into harness internals.
    assert positions(violations, "no-deep-harness-import") == [(1, 1), (2, 1)]
    assert "repro.harness.runner" in violations[0].message
    # Library/test code may import submodules freely.
    assert engine.lint_source(src, "src/repro/analysis/figures.py") == []


def test_noqa_suppression_is_rule_precise():
    violations = lint_fixture("suppressed.py")
    # line 2: suppressed by rule id; line 3: suppressed by bare noqa;
    # line 7: noqa names the wrong rule, so the violation survives.
    assert [(v.line, v.rule_id) for v in violations] == [
        (7, "no-bare-random"),
    ]


def test_noqa_file_suppresses_named_rules_everywhere():
    engine = LintEngine()
    src = (
        "# repro: noqa-file[no-bare-random]\n"
        "import random\n"
        "\n"
        "\n"
        "def draw():\n"
        "    return random.random()\n"
    )
    assert engine.lint_source(src, "pkg/module.py") == []
    # The marker names explicit ids: other rules still fire.
    src_other = src + "\n\ndef f(xs=[]):\n    return xs\n"
    violations = engine.lint_source(src_other, "pkg/module.py")
    assert [v.rule_id for v in violations] == ["mutable-default-arg"]


def test_noqa_file_marker_is_not_a_line_blanket():
    engine = LintEngine()
    # On its own line the -file marker must not double as a bare noqa.
    src = "import random  # repro: noqa-file[no-wallclock]\n"
    violations = engine.lint_source(src, "pkg/module.py")
    assert [v.rule_id for v in violations] == ["no-bare-random"]


def test_rule_filter():
    violations = lint_fixture("bare_random.py", rules=["no-wallclock"])
    assert violations == []


def test_syntax_error_reported_as_violation(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    violations = lint_paths([str(bad)])
    assert len(violations) == 1
    assert violations[0].rule_id == "syntax-error"


def test_violations_sorted_and_renderable():
    violations = lint_fixture(".")
    assert violations == sorted(violations)
    for v in violations:
        rendered = v.render()
        assert f"{v.line}:{v.col}" in rendered
        assert v.rule_id in rendered


def test_engine_lint_source_directly():
    engine = LintEngine()
    violations = engine.lint_source("import random\n", "pkg/module.py")
    assert [v.rule_id for v in violations] == ["no-bare-random"]


def test_repo_source_tree_is_lint_clean():
    # The acceptance bar: `repro lint src examples` exits 0 on this repo.
    examples = REPO_SRC.parent / "examples"
    assert lint_paths([str(REPO_SRC), str(examples)]) == []
