"""Tracepoint schema analyzer: conflicts, variants, and the docs gates."""

from pathlib import Path

from repro.devtools.analysis import ANALYZERS, Project, run_check, write_trace_schema
from repro.devtools.analysis.tracepoints import build_schema, render_schema_md

CASE = Path(__file__).parent / "fixtures" / "check" / "trace_case"
OK_FILE = CASE / "trace_ok.py"


def findings_for(paths):
    project = Project.load(paths)
    return sorted(ANALYZERS.analyzers["tracepoints"].analyze(project))


def test_disagreeing_sites_conflict():
    findings = findings_for([CASE])
    assert [f.rule_id for f in findings] == ["trace-field-mismatch"] * 2
    events = sorted(f.message.split("'")[1] for f in findings)
    assert events == ["fix.mixed", "fix.sample"]
    assert all(f.path.endswith("trace_bad.py") for f in findings)


def test_discriminated_and_wildcard_sites_are_consistent():
    assert findings_for([OK_FILE]) == []


def test_schema_variants():
    schemas = {s.event: s for s in build_schema(Project.load([OK_FILE]))}
    assert sorted(schemas) == ["fix.decision", "fix.drop", "fix.rate"]

    drop = schemas["fix.drop"]
    values = sorted(v.value for v in drop.variants)
    assert values == ["outage", "tail"]
    tail = next(v for v in drop.variants if v.value == "tail")
    assert "backlog_bytes" in tail.required

    # Identical sites collapse to one undistinguished variant.
    rate = schemas["fix.rate"]
    assert len(rate.variants) == 1 and rate.variants[0].discriminator is None

    # Dynamic-discriminator sites group into the `reason=*` wildcard.
    decision = schemas["fix.decision"]
    wildcard = [v for v in decision.variants if v.value is None]
    assert len(wildcard) == 1 and wildcard[0].discriminator == "reason"
    assert len(wildcard[0].sites) == 2


def test_rendered_markdown_shows_wildcard_variants():
    rendered = render_schema_md(build_schema(Project.load([OK_FILE])))
    assert "`reason=*`" in rendered
    assert "`reason=tail`" in rendered


def test_missing_schema_doc_is_stale_until_generated(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    report = run_check([OK_FILE], checks=["tracepoints"], docs_dir=docs)
    assert [f.rule_id for f in report.findings] == ["trace-schema-stale"]

    write_trace_schema([OK_FILE], docs)
    report = run_check([OK_FILE], checks=["tracepoints"], docs_dir=docs)
    assert report.ok


def test_undocumented_events_are_flagged(tmp_path):
    docs = tmp_path / "docs"
    docs.mkdir()
    write_trace_schema([OK_FILE], docs)
    (docs / "OBSERVABILITY.md").write_text(
        "# Events\n\nOnly `fix.drop` and `fix.rate` are described here.\n"
    )
    report = run_check([OK_FILE], checks=["tracepoints"], docs_dir=docs)
    assert [f.rule_id for f in report.findings] == ["trace-undocumented"]
    assert "fix.decision" in report.findings[0].message
