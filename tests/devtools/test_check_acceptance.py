"""Acceptance gates: seeding each bug class into a copy of src/ must fail.

Each test copies the real tree, plants one defect of the class the
issue names (unit mismatch, worker-reachable global write, inconsistent
emit field set, upward sim->harness import), and asserts ``repro
check`` turns red — proving the gate would catch the regression on CI.
"""

import shutil
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def planted_src(tmp_path, monkeypatch):
    shutil.copytree(
        REPO_ROOT / "src",
        tmp_path / "src",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    shutil.copy(REPO_ROOT / "check_baseline.json", tmp_path / "check_baseline.json")
    monkeypatch.chdir(tmp_path)
    return tmp_path / "src"


def test_pristine_copy_passes(planted_src, capsys):
    assert main(["check", "src"]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_unit_mismatch_fails(planted_src, capsys):
    target = planted_src / "repro" / "core" / "utility.py"
    target.write_text(
        target.read_text()
        + "\n\ndef _planted_mix(rtt_ms, dur_s):\n    return rtt_ms + dur_s\n"
    )
    assert main(["check", "src"]) == 1
    assert "unit-mismatch" in capsys.readouterr().out


def test_worker_global_write_fails(planted_src, capsys):
    (planted_src / "repro" / "harness" / "_planted.py").write_text(
        "_CACHE: dict = {}\n"
        "\n\n"
        "def _planted_worker(item):\n"
        "    _CACHE[item] = item\n"
        "    return item\n"
        "\n\n"
        "def _planted_run(pmap, items):\n"
        "    return pmap(_planted_worker, items)\n"
    )
    assert main(["check", "src"]) == 1
    assert "worker-global-write" in capsys.readouterr().out


def test_inconsistent_emit_fields_fail(planted_src, capsys):
    (planted_src / "repro" / "obs" / "_planted.py").write_text(
        "def a(tracer, rtt_s):\n"
        '    tracer.emit("planted.ev", rtt_s=rtt_s)\n'
        "\n\n"
        "def b(tracer, loss_pkts):\n"
        '    tracer.emit("planted.ev", loss_pkts=loss_pkts)\n'
    )
    assert main(["check", "src"]) == 1
    assert "trace-field-mismatch" in capsys.readouterr().out


def test_sim_importing_harness_fails(planted_src, capsys):
    (planted_src / "repro" / "sim" / "_planted.py").write_text(
        "from repro.harness import trials\n\n__all__ = ['trials']\n"
    )
    assert main(["check", "src"]) == 1
    assert "layer-violation" in capsys.readouterr().out
