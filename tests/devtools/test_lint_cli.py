"""CLI surface of ``repro lint``: exit codes and output formats."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def planted(tmp_path, name):
    """Copy a fixture outside the tests/ tree so full rule strictness applies."""
    out = tmp_path / Path(name).name
    out.write_text((FIXTURES / name).read_text())
    return str(out)


def test_lint_clean_tree_exits_zero(capsys):
    assert main(["lint", str(REPO_SRC)]) == 0
    out = capsys.readouterr().out
    assert "0 violations" in out


def test_lint_violations_exit_one(capsys, tmp_path):
    assert main(["lint", planted(tmp_path, "bare_random.py")]) == 1
    out = capsys.readouterr().out
    assert "no-bare-random" in out
    assert "4 violations" in out


def test_lint_json_output(capsys, tmp_path):
    assert main(["lint", "--json", planted(tmp_path, "mutable_default.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 3
    assert payload[0]["rule"] == "mutable-default-arg"
    assert {"path", "line", "col", "rule", "message"} <= set(payload[0])


def test_lint_missing_path_exits_two(capsys):
    assert main(["lint", "does/not/exist"]) == 2
    assert "does/not/exist" in capsys.readouterr().err


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "no-bare-random",
        "no-wallclock",
        "no-float-eq",
        "unit-suffix",
        "mutable-default-arg",
    ):
        assert rule_id in out
