"""Unit dataflow analyzer against the golden fixture package."""

from pathlib import Path

from repro.devtools.analysis import ANALYZERS, Project

CASE = Path(__file__).parent / "fixtures" / "check" / "units_case"


def findings_for(case_dir):
    project = Project.load([case_dir])
    return sorted(ANALYZERS.analyzers["units"].analyze(project))


def in_file(findings, name):
    return [f for f in findings if f.path.endswith(name)]


def test_bad_file_flags_every_construct():
    bad = in_file(findings_for(CASE), "units_bad.py")
    messages = [f.message for f in bad]
    assert len(bad) == 6
    assert any("incompatible dimensions (_ms vs _bytes)" in m for m in messages)
    assert any("assignment to delay_s" in m for m in messages)
    assert any("comparison" in m and "_s vs _ms" in m for m in messages)
    assert any("keyword 'rtt_s' of 'record()'" in m for m in messages)
    assert any("'max()' arguments mix units" in m for m in messages)
    assert any("augmented assignment to total_bytes" in m for m in messages)


def test_keyword_sites_use_the_call_check_id():
    bad = in_file(findings_for(CASE), "units_bad.py")
    kw = [f for f in bad if "keyword 'rtt_s'" in f.message]
    assert [f.rule_id for f in kw] == ["unit-call-mismatch"]


def test_cross_module_positional_resolution():
    calls = in_file(findings_for(CASE), "caller.py")
    assert [f.rule_id for f in calls] == ["unit-call-mismatch"] * 2
    by_message = sorted(f.message for f in calls)
    assert "argument 1 of 'Pacer()' fills parameter 'rate_bps'" in by_message[0]
    assert "argument 1 of 'wait_for()' fills parameter 'delay_s'" in by_message[1]


def test_ok_file_is_clean():
    assert in_file(findings_for(CASE), "units_ok.py") == []
    assert in_file(findings_for(CASE), "helper.py") == []


def test_literal_rescale_is_not_a_false_positive():
    # The `call_right` site passes `rtt_ms * 1e-3` into a `_s` parameter.
    calls = in_file(findings_for(CASE), "caller.py")
    assert not any("call_right" in f.message for f in calls)
