"""Layering analyzer: upward imports, cycles, and the typing-only escape."""

from pathlib import Path

from repro.devtools.analysis import ANALYZERS, Project
from repro.devtools.analysis.layering import layer_of

FIXTURES = Path(__file__).parent / "fixtures" / "check"


def findings_for(case):
    project = Project.load([FIXTURES / case])
    return sorted(ANALYZERS.analyzers["layering"].analyze(project))


def test_layer_of():
    assert layer_of("repro.core.utility", "repro") == "core"
    assert layer_of("repro.sim.link", "repro") == "sim"
    assert layer_of("repro.apps.web", "repro") == "protocols"
    assert layer_of("repro.harness.trials", "repro") == "harness"
    assert layer_of("repro", "repro") is None  # the facade is exempt
    assert layer_of("other.sim.x", "repro") is None


def test_upward_import_is_a_violation():
    findings = findings_for("layers_bad")
    violations = [f for f in findings if f.rule_id == "layer-violation"]
    assert len(violations) == 1
    assert violations[0].path.endswith("model.py")
    message = violations[0].message
    assert "'repro.sim.model' (layer sim)" in message
    assert "'repro.harness' (layer harness)" in message


def test_runtime_cycle_is_reported_once():
    findings = findings_for("layers_bad")
    cycles = [f for f in findings if f.rule_id == "import-cycle"]
    assert len(cycles) == 1
    assert "repro.core.alpha" in cycles[0].message
    assert "repro.core.beta" in cycles[0].message


def test_clean_tree_with_typing_only_back_edge():
    # engine -> flow exists only under TYPE_CHECKING: direction-legal
    # (same layer) and invisible to the cycle detector.
    assert findings_for("layers_ok") == []
