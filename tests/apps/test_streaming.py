"""Integration tests for streaming sessions and the web workload."""

import pytest

from repro.apps import VideoDefinition, make_corpus, sample_page
from repro.apps.streaming import StreamingSession
from repro.apps.web import run_poisson_page_loads
from repro.harness import FlowSpec, LinkConfig, run_streaming
from repro.protocols import make_sender
from repro.sim import Dumbbell, Simulator, make_rng, mbps


def small_video(max_mbps=8.0, n_chunks=12):
    ladder = tuple(b * 1e6 for b in (1.0, 2.0, 4.0, max_mbps))
    return VideoDefinition(
        name="small",
        bitrates_bps=ladder,
        chunk_duration_s=3.0,
        duration_s=n_chunks * 3.0,
    )


def build(bandwidth_mbps=50.0):
    sim = Simulator()
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=mbps(bandwidth_mbps),
        rtt_s=0.030,
        buffer_bytes=375e3,
        rng=make_rng(1),
    )
    return sim, dumbbell


def test_session_plays_whole_video_on_fast_link():
    sim, dumbbell = build(bandwidth_mbps=50.0)
    video = small_video()
    sender = make_sender("proteus-p")
    flow = dumbbell.add_flow(sender, chunked=True)
    session = StreamingSession(sim, flow, video)
    sim.run(until=60.0)
    assert session.finished
    assert len(session.chunks) == video.n_chunks
    assert session.rebuffer_ratio() < 0.02
    # Plenty of bandwidth: BOLA should mostly sit at the top rung.
    assert session.average_bitrate_bps() > 0.6 * video.max_bitrate_bps


def test_session_downshifts_on_slow_link():
    sim, dumbbell = build(bandwidth_mbps=3.0)
    video = small_video()
    sender = make_sender("proteus-p")
    flow = dumbbell.add_flow(sender, chunked=True)
    session = StreamingSession(sim, flow, video)
    sim.run(until=80.0)
    assert session.chunks, "some chunks must complete"
    assert session.average_bitrate_bps() < 4e6  # stays near the bottom rungs


def test_chunk_records_are_ordered_and_complete():
    sim, dumbbell = build()
    video = small_video()
    flow = dumbbell.add_flow(make_sender("proteus-p"), chunked=True)
    session = StreamingSession(sim, flow, video)
    sim.run(until=60.0)
    indices = [c.index for c in session.chunks]
    assert indices == list(range(len(indices)))
    for c in session.chunks:
        assert c.completed_at >= c.requested_at


def test_forced_level_overrides_bola():
    sim, dumbbell = build()
    video = small_video()
    flow = dumbbell.add_flow(make_sender("proteus-p"), chunked=True)
    session = StreamingSession(sim, flow, video, forced_level=3)
    sim.run(until=60.0)
    assert all(c.level == 3 for c in session.chunks)


def test_hybrid_transport_receives_threshold_updates():
    sim, dumbbell = build()
    video = small_video()
    sender = make_sender("proteus-h")
    flow = dumbbell.add_flow(sender, chunked=True)
    StreamingSession(sim, flow, video)
    sim.run(until=20.0)
    # The side channel must have installed a finite threshold by now.
    assert sender.utility.threshold_bps < float("inf")
    assert sender.utility.threshold_bps <= 1.5 * video.max_bitrate_bps + 1.0


def test_run_streaming_harness_end_to_end():
    corpus = make_corpus(seed=3)
    videos = corpus.pick(make_rng(5), 0, 2)
    config = LinkConfig(bandwidth_mbps=40.0, rtt_ms=30.0, buffer_kb=500.0)
    results = run_streaming(videos, "proteus-p", config, duration_s=40.0)
    assert len(results) == 2
    for r in results:
        assert r.chunks_delivered > 5
        assert 0.0 <= r.rebuffer_ratio <= 1.0
        assert r.average_bitrate_mbps > 1.0


def test_run_streaming_with_background_flow():
    corpus = make_corpus(seed=3)
    videos = corpus.pick(make_rng(5), 0, 1)
    config = LinkConfig(bandwidth_mbps=30.0, rtt_ms=30.0, buffer_kb=400.0)
    with_bg = run_streaming(
        videos,
        "cubic",
        config,
        duration_s=40.0,
        background=[FlowSpec("proteus-s", start_time=1.0)],
    )
    assert with_bg[0].chunks_delivered > 5


# ----------------------------------------------------------------------
# Web workload
# ----------------------------------------------------------------------
def test_sample_page_shape():
    rng = make_rng(2)
    page = sample_page(rng)
    assert 20 <= len(page.object_sizes) <= 80
    assert all(s >= 200 for s in page.object_sizes)
    assert page.total_bytes > 100_000


def test_sample_page_validation():
    with pytest.raises(ValueError):
        sample_page(make_rng(1), n_objects_range=(0, 5))


def test_poisson_page_loads_complete():
    sim, dumbbell = build(bandwidth_mbps=50.0)
    client = run_poisson_page_loads(
        sim, dumbbell, duration_s=40.0, rate_per_s=0.2, seed=4
    )
    sim.run(until=60.0)
    times = client.completed_load_times()
    assert len(times) >= 3
    assert all(t > 0.0 for t in times)
    # On an idle 50 Mbps link pages of a few MB load within seconds.
    assert sorted(times)[len(times) // 2] < 10.0


def test_page_loads_faster_with_proteus_than_ledbat_background():
    """Fig 11(b)'s claim: pages load faster with Proteus-S scavenging in
    the background than with LEDBAT (§6.2.2)."""
    def run(background: str | None) -> float:
        sim, dumbbell = build(bandwidth_mbps=30.0)
        if background is not None:
            dumbbell.add_flow(make_sender(background), flow_id=999)
        client = run_poisson_page_loads(
            sim, dumbbell, duration_s=50.0, rate_per_s=0.2, seed=6
        )
        sim.run(until=70.0)
        times = sorted(client.completed_load_times())
        return times[len(times) // 2]

    scavenger_plt = run("proteus-s")
    ledbat_plt = run("ledbat")
    assert scavenger_plt < ledbat_plt
