"""Tests for the alternative ABR agents."""

import pytest

from repro.apps import BufferThresholdAbrAgent, ThroughputAbrAgent, VideoDefinition


def make_video():
    return VideoDefinition(
        name="v",
        bitrates_bps=(1e6, 2.5e6, 5e6, 10e6),
        chunk_duration_s=3.0,
        duration_s=60.0,
    )


# ----------------------------------------------------------------------
# Throughput ABR
# ----------------------------------------------------------------------
def test_throughput_abr_starts_at_lowest():
    agent = ThroughputAbrAgent(make_video())
    assert agent.estimate_bps() == 0.0
    assert agent.choose_level(10.0) == 0


def test_throughput_abr_tracks_observed_rate():
    agent = ThroughputAbrAgent(make_video(), safety=1.0)
    # 6 Mbps downloads: top rung below 6 is 5 Mbps (index 2).
    agent.record_chunk(nbytes=750_000, download_s=1.0)
    assert agent.estimate_bps() == pytest.approx(6e6)
    assert agent.choose_level(10.0) == 2


def test_throughput_abr_harmonic_mean_is_conservative():
    agent = ThroughputAbrAgent(make_video(), safety=1.0)
    agent.record_chunk(1_250_000, 1.0)  # 10 Mbps
    agent.record_chunk(125_000, 1.0)  # 1 Mbps
    harmonic = agent.estimate_bps()
    arithmetic = (10e6 + 1e6) / 2
    assert harmonic < arithmetic
    assert harmonic == pytest.approx(2 / (1 / 10e6 + 1 / 1e6))


def test_throughput_abr_safety_discount():
    agent = ThroughputAbrAgent(make_video(), safety=0.4)
    agent.record_chunk(750_000, 1.0)  # 6 Mbps -> budget 2.4 Mbps
    assert agent.choose_level(10.0) == 0  # only 1 Mbps fits under 2.4? index of 1e6
    agent2 = ThroughputAbrAgent(make_video(), safety=0.5)
    agent2.record_chunk(750_000, 1.0)  # budget 3.0: 2.5 Mbps fits
    assert agent2.choose_level(10.0) == 1


def test_throughput_abr_validation():
    agent = ThroughputAbrAgent(make_video())
    with pytest.raises(ValueError):
        agent.record_chunk(1000, 0.0)
    with pytest.raises(ValueError):
        ThroughputAbrAgent(make_video(), safety=0.0)
    with pytest.raises(ValueError):
        ThroughputAbrAgent(make_video(), window=0)


def test_throughput_abr_scavenger_feedback_loop():
    """The §4.4 caveat in miniature: feed the agent the low throughput a
    yielding transport delivers and it locks onto the bottom rung even
    with a full buffer — exactly why Proteus-H pairs with buffer-based
    ABR instead."""
    agent = ThroughputAbrAgent(make_video())
    for _ in range(5):
        agent.record_chunk(150_000, 1.0)  # 1.2 Mbps scavenged trickle
    assert agent.choose_level(buffer_level_s=14.0) == 0


# ----------------------------------------------------------------------
# Buffer-threshold ABR
# ----------------------------------------------------------------------
def test_buffer_threshold_reservoir_and_cushion():
    agent = BufferThresholdAbrAgent(make_video(), reservoir_s=3.0, cushion_s=12.0)
    assert agent.choose_level(0.0) == 0
    assert agent.choose_level(3.0) == 0
    assert agent.choose_level(12.0) == 3
    assert agent.choose_level(20.0) == 3


def test_buffer_threshold_monotone():
    agent = BufferThresholdAbrAgent(make_video())
    levels = [agent.choose_level(q) for q in (0.0, 4.0, 7.0, 10.0, 13.0)]
    assert levels == sorted(levels)


def test_buffer_threshold_validation():
    with pytest.raises(ValueError):
        BufferThresholdAbrAgent(make_video(), reservoir_s=5.0, cushion_s=5.0)
    agent = BufferThresholdAbrAgent(make_video())
    with pytest.raises(ValueError):
        agent.choose_level(-1.0)
