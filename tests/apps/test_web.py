"""Unit tests for the web page-load client internals."""

import pytest

from repro.apps import PageLoadClient, WebPage, sample_page
from repro.sim import Dumbbell, Simulator, make_rng, mbps


def build(bandwidth_mbps=40.0):
    sim = Simulator()
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=mbps(bandwidth_mbps),
        rtt_s=0.030,
        buffer_bytes=400e3,
        rng=make_rng(2),
    )
    return sim, dumbbell


def test_page_load_completes_and_counts_all_objects():
    sim, dumbbell = build()
    client = PageLoadClient(sim, dumbbell, protocol="cubic", seed=1)
    page = WebPage(object_sizes=(50_000, 30_000, 20_000, 10_000))
    load = client.load_page(page)
    sim.run(until=20.0)
    assert load.completed_at is not None
    assert load.load_time_s > 0.0
    assert load._outstanding == 0
    assert load._queue == []


def test_parallelism_limited_to_connection_pool():
    sim, dumbbell = build()
    client = PageLoadClient(sim, dumbbell, max_parallel=2, seed=1)
    page = WebPage(object_sizes=tuple([20_000] * 8))
    load = client.load_page(page)
    # Immediately after start only 2 objects are in flight.
    assert load._outstanding == 2
    assert len(load._queue) == 6
    sim.run(until=30.0)
    assert load.completed_at is not None


def test_big_objects_fetched_first():
    sim, dumbbell = build()
    client = PageLoadClient(sim, dumbbell, max_parallel=1, seed=1)
    page = WebPage(object_sizes=(1_000, 90_000, 5_000))
    load = client.load_page(page)
    # Remaining queue is sorted descending after the largest was taken.
    assert load._queue == [5_000, 1_000]
    sim.run(until=30.0)


def test_concurrent_pages_all_complete():
    sim, dumbbell = build()
    client = PageLoadClient(sim, dumbbell, seed=1)
    rng = make_rng(3)
    for _ in range(3):
        client.load_page(sample_page(rng, n_objects_range=(5, 10)))
    sim.run(until=60.0)
    assert len(client.completed_load_times()) == 3


def test_client_validation():
    sim, dumbbell = build()
    with pytest.raises(ValueError):
        PageLoadClient(sim, dumbbell, max_parallel=0)


def test_page_total_bytes():
    page = WebPage(object_sizes=(100, 200, 300))
    assert page.total_bytes == 600
