"""Unit tests for BOLA bitrate adaptation."""

import pytest

from repro.apps import BolaAgent, VideoDefinition


def make_video():
    return VideoDefinition(
        name="test",
        bitrates_bps=(1e6, 2.5e6, 5e6, 8e6, 16e6),
        chunk_duration_s=3.0,
        duration_s=180.0,
    )


def test_empty_buffer_picks_lowest():
    agent = BolaAgent(make_video(), buffer_capacity_s=15.0)
    assert agent.choose_level(0.0) == 0


def test_full_buffer_picks_highest():
    agent = BolaAgent(make_video(), buffer_capacity_s=15.0)
    top = len(make_video().bitrates_bps) - 1
    assert agent.choose_level(12.0) == top


def test_choice_is_monotone_in_buffer_level():
    agent = BolaAgent(make_video(), buffer_capacity_s=15.0)
    levels = [agent.choose_level(q) for q in [0.0, 3.0, 6.0, 9.0, 12.0, 15.0]]
    assert levels == sorted(levels)


def test_switch_points_are_ordered():
    agent = BolaAgent(make_video(), buffer_capacity_s=15.0)
    switches = [agent.switch_buffer_s(m) for m in range(1, 5)]
    assert switches == sorted(switches)
    # All switch points live inside the buffer range.
    assert switches[0] > 0.0
    assert switches[-1] < 15.0


def test_switch_point_consistency_with_choices():
    agent = BolaAgent(make_video(), buffer_capacity_s=15.0)
    q = agent.switch_buffer_s(2)
    assert agent.choose_level(q - 0.2) <= 1
    assert agent.choose_level(q + 0.2) >= 2


def test_validation():
    video = make_video()
    with pytest.raises(ValueError):
        BolaAgent(video, buffer_capacity_s=2.0)  # <= one chunk
    with pytest.raises(ValueError):
        BolaAgent(video, buffer_capacity_s=15.0, gp=0.5)
    agent = BolaAgent(video, buffer_capacity_s=15.0)
    with pytest.raises(ValueError):
        agent.choose_level(-1.0)
    with pytest.raises(IndexError):
        agent.switch_buffer_s(0)
