"""Unit tests for the DASH video corpus."""

import pytest

from repro.apps import VideoDefinition, make_corpus
from repro.sim import make_rng


def test_video_definition_chunks_and_sizes():
    video = VideoDefinition(
        name="v", bitrates_bps=(1e6, 4e6), chunk_duration_s=3.0, duration_s=180.0
    )
    assert video.n_chunks == 60
    assert video.chunk_bytes(0) == int(1e6 * 3 / 8)
    assert video.chunk_bytes(1) == int(4e6 * 3 / 8)
    assert video.max_bitrate_bps == 4e6


def test_video_definition_validation():
    with pytest.raises(ValueError):
        VideoDefinition(name="v", bitrates_bps=())
    with pytest.raises(ValueError):
        VideoDefinition(name="v", bitrates_bps=(4e6, 1e6))  # not ascending
    with pytest.raises(ValueError):
        VideoDefinition(name="v", bitrates_bps=(1e6,), chunk_duration_s=0.0)
    video = VideoDefinition(name="v", bitrates_bps=(1e6, 2e6))
    with pytest.raises(IndexError):
        video.chunk_bytes(5)


def test_corpus_matches_paper_constraints():
    corpus = make_corpus(seed=0)
    assert len(corpus.videos_4k) == 10
    assert len(corpus.videos_1080p) == 10
    for v in corpus.videos_4k:
        assert v.max_bitrate_bps > 40e6  # "highest bitrates of above 40 Mbps"
        assert v.duration_s >= 180.0  # "at least 3 minutes long"
        assert v.chunk_duration_s == 3.0  # "3-second chunks"
    for v in corpus.videos_1080p:
        assert v.max_bitrate_bps > 10e6
        assert v.duration_s >= 180.0


def test_corpus_is_deterministic_per_seed():
    a = make_corpus(seed=7)
    b = make_corpus(seed=7)
    assert a.videos_4k[3].bitrates_bps == b.videos_4k[3].bitrates_bps
    c = make_corpus(seed=8)
    assert a.videos_4k[3].bitrates_bps != c.videos_4k[3].bitrates_bps


def test_corpus_pick_selection():
    corpus = make_corpus(seed=0)
    rng = make_rng(1)
    videos = corpus.pick(rng, 1, 3)
    assert len(videos) == 4
    assert sum(1 for v in videos if v.name.startswith("4k")) == 1
    with pytest.raises(ValueError):
        corpus.pick(rng, 11, 0)
