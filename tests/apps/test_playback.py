"""Unit tests for the emulated playback buffer."""

import pytest

from repro.apps import PlaybackBuffer


def test_playback_starts_after_startup_threshold():
    buf = PlaybackBuffer(capacity_s=15.0, startup_s=3.0)
    buf.add_chunk(0.0, 3.0)
    assert buf.started
    assert buf.playing
    assert buf.startup_delay_s == 0.0


def test_playback_does_not_start_below_threshold():
    buf = PlaybackBuffer(capacity_s=15.0, startup_s=6.0)
    buf.add_chunk(0.0, 3.0)
    assert not buf.started
    buf.add_chunk(1.0, 3.0)
    assert buf.started


def test_buffer_drains_in_real_time():
    buf = PlaybackBuffer(capacity_s=15.0, startup_s=3.0)
    buf.add_chunk(0.0, 3.0)
    buf.update(2.0)
    assert buf.level_s == pytest.approx(1.0)
    assert buf.play_time_s == pytest.approx(2.0)


def test_rebuffer_when_buffer_runs_dry():
    buf = PlaybackBuffer(capacity_s=15.0, startup_s=3.0)
    buf.add_chunk(0.0, 3.0)
    buf.update(5.0)  # 3 s played, then 2 s stalled
    assert not buf.playing
    assert buf.rebuffer_events == 1
    assert buf.rebuffer_time_s == pytest.approx(2.0)
    assert buf.play_time_s == pytest.approx(3.0)
    assert buf.rebuffer_ratio() == pytest.approx(2.0 / 5.0)


def test_playback_resumes_after_rebuffer():
    buf = PlaybackBuffer(capacity_s=15.0, startup_s=3.0)
    buf.add_chunk(0.0, 3.0)
    buf.update(5.0)
    assert buf.is_rebuffering(5.0)
    buf.add_chunk(6.0, 3.0)  # one chunk is enough (startup_s = 3)
    assert buf.playing
    buf.update(7.0)
    assert buf.level_s == pytest.approx(2.0)
    # Stall lasted from t=3 to t=6.
    assert buf.rebuffer_time_s == pytest.approx(3.0)


def test_capacity_clamps_buffer_level():
    buf = PlaybackBuffer(capacity_s=6.0, startup_s=3.0)
    for t in (0.0, 0.1, 0.2, 0.3):
        buf.add_chunk(t, 3.0)
    assert buf.level_s <= 6.0
    assert buf.free_s(0.3) >= 0.0


def test_no_stall_time_before_start():
    buf = PlaybackBuffer(capacity_s=15.0, startup_s=6.0)
    buf.add_chunk(0.0, 3.0)  # below startup threshold
    buf.update(10.0)
    assert buf.rebuffer_time_s == 0.0
    assert buf.play_time_s == 0.0


def test_time_going_backwards_raises():
    buf = PlaybackBuffer(capacity_s=15.0)
    buf.update(5.0)
    with pytest.raises(ValueError):
        buf.update(4.0)


def test_parameter_validation():
    with pytest.raises(ValueError):
        PlaybackBuffer(capacity_s=0.0)
    with pytest.raises(ValueError):
        PlaybackBuffer(capacity_s=10.0, startup_s=-1.0)
