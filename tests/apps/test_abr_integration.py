"""End-to-end test of the §4.4 ABR caveat.

The paper presents the Proteus-H threshold rules as "a representative
solution for benchmarking; it may not be suitable for bitrate adaptation
that uses throughput for control."  This test runs the same hybrid
transport under BOLA (buffer-based) and under a throughput-based ABR:
the buffer-based pairing sustains a high bitrate, while the
throughput-based agent reads the scavenged-down delivery rate as low
capacity and gets stuck far below it.
"""

from repro.apps import ThroughputAbrAgent, VideoDefinition
from repro.apps.streaming import StreamingSession
from repro.protocols import make_sender
from repro.sim import Dumbbell, Simulator, make_rng, mbps


def small_video():
    return VideoDefinition(
        name="v",
        bitrates_bps=(1e6, 2e6, 4e6, 8e6),
        chunk_duration_s=3.0,
        duration_s=90.0,
    )


def run_with_agent(use_throughput_abr: bool) -> float:
    sim = Simulator()
    dumbbell = Dumbbell(sim, mbps(30.0), 0.030, 375e3, rng=make_rng(6))
    video = small_video()
    # A primary flow shares the link, so the hybrid transport genuinely
    # operates around its threshold instead of bursting at will.
    dumbbell.add_flow(make_sender("proteus-p", seed=3), flow_id=9)
    sender = make_sender("proteus-h", seed=4)
    flow = dumbbell.add_flow(sender, chunked=True)
    agent = (
        ThroughputAbrAgent(video)
        if use_throughput_abr
        else None  # default BOLA
    )
    session = StreamingSession(sim, flow, video, agent=agent)
    sim.run(until=80.0)
    return session.average_bitrate_bps()


def test_throughput_abr_no_better_than_bola_with_hybrid_transport():
    bola_bitrate = run_with_agent(use_throughput_abr=False)
    rate_abr_bitrate = run_with_agent(use_throughput_abr=True)
    # The hybrid transport defends its threshold: buffer-based BOLA
    # sustains a usable bitrate next to the primary flow.
    assert bola_bitrate > 3e6
    # The paper's caveat: throughput-based control cannot *beat* the
    # buffer-based pairing — the transport's deliberate slowdowns feed it
    # depressed capacity estimates (allow a small sampling margin).
    assert rate_abr_bitrate <= bola_bitrate * 1.1
