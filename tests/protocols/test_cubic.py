"""Behavioural tests for TCP CUBIC (and Reno)."""

import pytest

from repro.protocols import CubicSender, RenoSender
from repro.sim import Dumbbell, Simulator, make_rng, mbps


def build(bandwidth_mbps=20.0, rtt_ms=30.0, buffer_kb=150.0, loss=0.0, seed=1):
    sim = Simulator()
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=mbps(bandwidth_mbps),
        rtt_s=rtt_ms / 1e3,
        buffer_bytes=buffer_kb * 1e3,
        loss_rate=loss,
        rng=make_rng(seed),
    )
    return sim, dumbbell


def test_cubic_saturates_a_clean_link():
    sim, dumbbell = build()
    flow = dumbbell.add_flow(CubicSender())
    sim.run(until=20.0)
    assert flow.stats.throughput_bps(10.0, 20.0) / 1e6 > 18.0


def test_cubic_slow_start_doubles_window():
    sim, dumbbell = build(bandwidth_mbps=1000.0, buffer_kb=10_000.0)
    sender = CubicSender()
    dumbbell.add_flow(sender)
    sim.run(until=0.031)  # just after one RTT
    # Initial 10, one ACK per packet => cwnd ~20 after one round.
    assert 18.0 <= sender.cwnd <= 25.0


def test_cubic_multiplicative_decrease_on_loss():
    sim, dumbbell = build()
    sender = CubicSender()
    dumbbell.add_flow(sender)
    sim.run(until=20.0)
    sender_cwnd = sender.cwnd
    sender.on_loss(seq=10**9, sent_time=sim.now)
    assert sender.cwnd == pytest.approx(sender_cwnd * CubicSender.beta)
    assert sender.ssthresh == sender.cwnd


def test_cubic_single_reduction_per_episode():
    sim, dumbbell = build()
    sender = CubicSender()
    dumbbell.add_flow(sender)
    sim.run(until=10.0)
    before = sender.cwnd
    now = sim.now
    sender.on_loss(seq=1, sent_time=now)
    after_first = sender.cwnd
    # Another loss from a packet sent before the reduction: same episode.
    sender.on_loss(seq=2, sent_time=now - 0.001)
    assert sender.cwnd == after_first
    assert after_first < before


def test_cubic_fills_deep_buffers():
    """CUBIC is loss-based: it inflates the standing queue (Fig 3b)."""
    sim, dumbbell = build(buffer_kb=375.0)
    flow = dumbbell.add_flow(CubicSender())
    sim.run(until=30.0)
    p95 = flow.stats.rtt_percentile(95, 15.0, 30.0)
    # Base RTT 30 ms; 375 KB @ 20 Mbps = 150 ms of queue. CUBIC should
    # push p95 well above base.
    assert p95 > 0.100


def test_cubic_recovers_after_timeout():
    sim, dumbbell = build()
    sender = CubicSender()
    flow = dumbbell.add_flow(sender)
    sim.run(until=5.0)
    sender.on_timeout()
    assert sender.cwnd == CubicSender.min_cwnd
    sim.run(until=20.0)
    assert flow.stats.throughput_bps(15.0, 20.0) / 1e6 > 15.0


def test_cubic_beats_reno_on_high_bdp():
    results = {}
    for cls in (CubicSender, RenoSender):
        sim, dumbbell = build(
            bandwidth_mbps=200.0, rtt_ms=100.0, buffer_kb=500.0, loss=1e-5, seed=4
        )
        flow = dumbbell.add_flow(cls())
        sim.run(until=30.0)
        results[cls.__name__] = flow.stats.throughput_bps(10.0, 30.0)
    assert results["CubicSender"] >= results["RenoSender"]


def test_reno_halves_on_loss():
    sim, dumbbell = build()
    sender = RenoSender()
    dumbbell.add_flow(sender)
    sim.run(until=10.0)
    before = sender.cwnd
    sender.on_loss(seq=10**9, sent_time=sim.now)
    assert sender.cwnd == pytest.approx(max(2.0, before / 2.0))
