"""Unit tests for the hostile cross-traffic senders."""

import pytest

from repro.obs import CollectingTracer
from repro.protocols import BurstFloodSender, OnOffSquareSender, make_sender
from repro.sim import Dumbbell, Simulator, make_rng, mbps


def build(bandwidth_mbps=20.0, rtt_ms=30.0, buffer_kb=150.0, seed=1, tracer=None):
    sim = Simulator(tracer=tracer)
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=mbps(bandwidth_mbps),
        rtt_s=rtt_ms / 1e3,
        buffer_bytes=buffer_kb * 1e3,
        rng=make_rng(seed),
    )
    return sim, dumbbell


def test_burst_flood_sends_periodic_bursts():
    tracer = CollectingTracer()
    sim, dumbbell = build(tracer=tracer)
    sender = BurstFloodSender(burst_packets=16, period_s=0.5, seed=5)
    flow = dumbbell.add_flow(sender)
    sim.run(until=5.0)
    bursts = [e for e in tracer.events if e.kind == "hostile.burst"]
    # ~10 periods in 5 s (jittered), one burst trace each.
    assert 7 <= len(bursts) <= 13
    assert all(1 <= e.fields["packets"] <= 16 for e in bursts)
    assert flow.stats.packets_sent >= 16 * 7


def test_burst_flood_is_deterministic():
    def delivered(run_seed):
        sim, dumbbell = build(seed=run_seed)
        flow = dumbbell.add_flow(BurstFloodSender(seed=9))
        sim.run(until=4.0)
        return flow.stats.delivered_bytes

    assert delivered(1) == delivered(1)


def test_burst_flood_phase_depends_on_seed():
    def first_send_time(sender_seed):
        tracer = CollectingTracer()
        sim, dumbbell = build(tracer=tracer)
        dumbbell.add_flow(BurstFloodSender(seed=sender_seed))
        sim.run(until=2.0)
        bursts = [e for e in tracer.events if e.kind == "hostile.burst"]
        return bursts[0].time_s

    assert first_send_time(1) != first_send_time(2)


def test_onoff_alternates_and_respects_duty_cycle():
    tracer = CollectingTracer()
    sim, dumbbell = build(bandwidth_mbps=50.0, tracer=tracer)
    sender = OnOffSquareSender(on_mbps=10.0, on_s=0.5, off_s=0.5, seed=3)
    flow = dumbbell.add_flow(sender)
    sim.run(until=10.0)
    reasons = [
        e.fields.get("reason")
        for e in tracer.events
        if e.kind == "rate.change"
        and (e.fields.get("reason") or "").startswith("hostile")
    ]
    assert "hostile:on" in reasons and "hostile:off" in reasons
    # ~50% duty cycle at 10 Mbps ON: mean rate well below ON, well above 0.
    mean_mbps = flow.stats.throughput_bps(0.0, 10.0) / 1e6
    assert 2.5 < mean_mbps < 7.5


def test_onoff_goes_silent_in_off_phase():
    sim, dumbbell = build(bandwidth_mbps=50.0)
    # jitter_frac=0 makes the phase boundaries exact multiples of 1 s.
    sender = OnOffSquareSender(on_mbps=20.0, on_s=1.0, off_s=1.0, jitter_frac=0.0, seed=4)
    flow = dumbbell.add_flow(sender)
    checkpoints = []
    for t in (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0):
        sim.run(until=t)
        checkpoints.append(flow.stats.packets_sent)
    deltas = [b - a for a, b in zip(checkpoints, checkpoints[1:])]
    silent = sum(1 for d in deltas if d == 0)
    active = sum(1 for d in deltas if d > 10)
    assert silent >= 2, f"expected silent half-periods, deltas={deltas}"
    assert active >= 2, f"expected active half-periods, deltas={deltas}"


def test_make_sender_builds_hostile_senders():
    burst = make_sender("burst-flood", seed=7, burst_packets=8)
    assert isinstance(burst, BurstFloodSender)
    assert burst.burst_packets == 8
    assert burst.seed == 7
    onoff = make_sender("onoff", seed=7, on_mbps=5.0)
    assert isinstance(onoff, OnOffSquareSender)
    assert onoff.on_mbps == 5.0


def test_constructor_validation():
    with pytest.raises(ValueError):
        BurstFloodSender(burst_packets=0)
    with pytest.raises(ValueError):
        BurstFloodSender(period_s=0.0)
    with pytest.raises(ValueError):
        BurstFloodSender(jitter_frac=1.0)
    with pytest.raises(ValueError):
        OnOffSquareSender(on_mbps=0.0)
    with pytest.raises(ValueError):
        OnOffSquareSender(off_s=0.0)
