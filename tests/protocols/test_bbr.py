"""Behavioural tests for BBR and BBR-S."""

import pytest

from repro.protocols import BBRScavengerSender, BBRSender, CubicSender
from repro.sim import Dumbbell, Simulator, make_rng, mbps


def build(bandwidth_mbps=50.0, rtt_ms=30.0, buffer_kb=375.0, loss=0.0, seed=1):
    sim = Simulator()
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=mbps(bandwidth_mbps),
        rtt_s=rtt_ms / 1e3,
        buffer_bytes=buffer_kb * 1e3,
        loss_rate=loss,
        rng=make_rng(seed),
    )
    return sim, dumbbell


def test_bbr_saturates_and_estimates_bandwidth():
    sim, dumbbell = build()
    sender = BBRSender()
    flow = dumbbell.add_flow(sender)
    sim.run(until=20.0)
    assert flow.stats.throughput_bps(10.0, 20.0) / 1e6 > 45.0
    assert sender.btl_bw_bps == pytest.approx(50e6, rel=0.15)
    assert sender.rtprop_s == pytest.approx(0.030, abs=0.01)


def test_bbr_exits_startup_into_probe_bw():
    sim, dumbbell = build()
    sender = BBRSender()
    dumbbell.add_flow(sender)
    sim.run(until=5.0)
    assert sender.state == "PROBE_BW"


def test_bbr_keeps_queue_bounded():
    """BBR's 2xBDP cap bounds inflation well below loss-based protocols."""
    sim, dumbbell = build(buffer_kb=375.0)
    bbr_flow = dumbbell.add_flow(BBRSender())
    sim.run(until=20.0)
    bbr_p95 = bbr_flow.stats.rtt_percentile(95, 10.0, 20.0)

    sim2, dumbbell2 = build(buffer_kb=375.0)
    cubic_flow = dumbbell2.add_flow(CubicSender())
    sim2.run(until=20.0)
    cubic_p95 = cubic_flow.stats.rtt_percentile(95, 10.0, 20.0)
    assert bbr_p95 < cubic_p95


def test_bbr_tolerates_random_loss():
    """Fig 4: BBR ignores loss; 2% random loss barely dents throughput."""
    sim, dumbbell = build(loss=0.02)
    flow = dumbbell.add_flow(BBRSender())
    sim.run(until=20.0)
    assert flow.stats.throughput_bps(10.0, 20.0) / 1e6 > 40.0


def test_bbr_probe_rtt_visits_low_inflight():
    sim, dumbbell = build()
    sender = BBRSender()
    dumbbell.add_flow(sender)
    states = set()

    def sample():
        states.add(sender.state)
        if sim.now < 24.0:
            sim.schedule(0.05, sample)

    sim.schedule(1.0, sample)
    sim.run(until=25.0)
    assert "PROBE_RTT" in states


def test_bbr_shares_with_itself():
    sim, dumbbell = build(bandwidth_mbps=40.0, buffer_kb=600.0)
    a = dumbbell.add_flow(BBRSender())
    b = dumbbell.add_flow(BBRSender(), start_time=5.0)
    sim.run(until=60.0)
    thr_a = a.stats.throughput_bps(30.0, 60.0) / 1e6
    thr_b = b.stats.throughput_bps(30.0, 60.0) / 1e6
    assert thr_a + thr_b > 35.0
    assert min(thr_a, thr_b) / max(thr_a, thr_b) > 0.4


def test_bbr_s_yields_to_bbr():
    """Fig 14: BBR-S collapses its rate when a primary BBR joins."""
    sim, dumbbell = build()
    scavenger = dumbbell.add_flow(BBRScavengerSender())
    primary = dumbbell.add_flow(BBRSender(), start_time=10.0)
    sim.run(until=50.0)
    primary_thr = primary.stats.throughput_bps(30.0, 50.0) / 1e6
    scavenger_thr = scavenger.stats.throughput_bps(30.0, 50.0) / 1e6
    assert primary_thr > 3.0 * scavenger_thr


def test_bbr_s_alone_performs_like_bbr():
    sim, dumbbell = build()
    flow = dumbbell.add_flow(BBRScavengerSender())
    sim.run(until=20.0)
    assert flow.stats.throughput_bps(10.0, 20.0) / 1e6 > 40.0


def test_bbr_s_fair_with_bbr_s():
    """Fig 14: two BBR-S flows share the bottleneck fairly."""
    sim, dumbbell = build()
    a = dumbbell.add_flow(BBRScavengerSender())
    b = dumbbell.add_flow(BBRScavengerSender(), start_time=5.0)
    sim.run(until=60.0)
    thr_a = a.stats.throughput_bps(30.0, 60.0) / 1e6
    thr_b = b.stats.throughput_bps(30.0, 60.0) / 1e6
    assert min(thr_a, thr_b) / max(thr_a, thr_b) > 0.4
