"""Behavioural tests for COPA."""

import pytest

from repro.protocols import CopaSender
from repro.sim import Dumbbell, Simulator, make_rng, mbps


def build(bandwidth_mbps=50.0, rtt_ms=30.0, buffer_kb=375.0, loss=0.0, seed=1):
    sim = Simulator()
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=mbps(bandwidth_mbps),
        rtt_s=rtt_ms / 1e3,
        buffer_bytes=buffer_kb * 1e3,
        loss_rate=loss,
        rng=make_rng(seed),
    )
    return sim, dumbbell


def test_copa_saturates_a_clean_link():
    sim, dumbbell = build()
    flow = dumbbell.add_flow(CopaSender())
    sim.run(until=20.0)
    assert flow.stats.throughput_bps(10.0, 20.0) / 1e6 > 45.0


def test_copa_keeps_low_standing_queue():
    """COPA targets 1/(delta*d_q): the queue stays a small RTT fraction."""
    sim, dumbbell = build(buffer_kb=600.0)
    flow = dumbbell.add_flow(CopaSender())
    sim.run(until=20.0)
    p95 = flow.stats.rtt_percentile(95, 10.0, 20.0)
    # Base 30 ms; 600 KB at 50 Mbps would be +96 ms if filled. COPA stays low.
    assert p95 < 0.060


def test_copa_tolerates_random_loss():
    """Fig 4: default-mode COPA does not react to loss."""
    sim, dumbbell = build(loss=0.03)
    flow = dumbbell.add_flow(CopaSender())
    sim.run(until=20.0)
    assert flow.stats.throughput_bps(10.0, 20.0) / 1e6 > 40.0


def test_copa_fair_with_itself():
    sim, dumbbell = build(bandwidth_mbps=40.0)
    a = dumbbell.add_flow(CopaSender())
    b = dumbbell.add_flow(CopaSender(), start_time=5.0)
    sim.run(until=40.0)
    thr_a = a.stats.throughput_bps(20.0, 40.0) / 1e6
    thr_b = b.stats.throughput_bps(20.0, 40.0) / 1e6
    assert thr_a + thr_b > 35.0
    assert min(thr_a, thr_b) / max(thr_a, thr_b) > 0.6


def test_copa_velocity_resets_on_direction_change():
    sim, dumbbell = build()
    sender = CopaSender()
    dumbbell.add_flow(sender)
    sim.run(until=20.0)
    # At steady state velocity cannot be unbounded.
    assert sender.velocity <= sender.cwnd
    assert sender.cwnd >= CopaSender.min_cwnd


def test_copa_timeout_halves_window():
    sim, dumbbell = build()
    sender = CopaSender()
    dumbbell.add_flow(sender)
    sim.run(until=10.0)
    before = sender.cwnd
    sender.on_timeout()
    assert sender.cwnd == pytest.approx(max(2.0, before / 2.0))
    assert sender.velocity == 1.0
