"""Tests for the extra baselines: TCP Vegas and PCC Allegro."""

import pytest

from repro.protocols import VegasSender, make_sender
from repro.sim import Dumbbell, Simulator, make_rng, mbps


def build(bandwidth_mbps=20.0, rtt_ms=30.0, buffer_kb=300.0, loss=0.0, seed=1):
    sim = Simulator()
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=mbps(bandwidth_mbps),
        rtt_s=rtt_ms / 1e3,
        buffer_bytes=buffer_kb * 1e3,
        loss_rate=loss,
        rng=make_rng(seed),
    )
    return sim, dumbbell


def test_vegas_saturates_with_low_queue():
    sim, dumbbell = build()
    flow = dumbbell.add_flow(VegasSender())
    sim.run(until=20.0)
    assert flow.stats.throughput_bps(10.0, 20.0) / 1e6 > 18.0
    # Vegas holds alpha..beta packets of queue: a few ms at most.
    assert flow.stats.rtt_percentile(95, 10.0, 20.0) < 0.045


def test_vegas_backs_off_on_loss():
    sim, dumbbell = build()
    sender = VegasSender()
    dumbbell.add_flow(sender)
    sim.run(until=10.0)
    before = sender.cwnd
    sender.on_loss(seq=10**9, sent_time=sim.now)
    assert sender.cwnd == pytest.approx(max(2.0, before * 0.75))


def test_vegas_is_delay_fragile_like_the_related_work_says():
    """Delay-based Vegas loses badly to loss-based CUBIC (the classic
    result motivating the paper's broader protocol landscape)."""
    sim, dumbbell = build(buffer_kb=600.0)
    vegas = dumbbell.add_flow(VegasSender())
    cubic = dumbbell.add_flow(make_sender("cubic"), start_time=3.0)
    sim.run(until=30.0)
    vegas_thr = vegas.stats.throughput_bps(15.0, 30.0)
    cubic_thr = cubic.stats.throughput_bps(15.0, 30.0)
    assert cubic_thr > 2.0 * vegas_thr


def test_allegro_moves_data():
    sim, dumbbell = build(bandwidth_mbps=30.0)
    flow = dumbbell.add_flow(make_sender("allegro"))
    sim.run(until=15.0)
    assert flow.stats.throughput_bps(8.0, 15.0) / 1e6 > 15.0


def test_allegro_is_loss_based_and_bufferbloats():
    """PCC Allegro's sigmoid utility ignores latency: with a deep buffer
    it inflates far more than Vivace (the Vivace paper's critique)."""
    sim, dumbbell = build(bandwidth_mbps=30.0, buffer_kb=900.0)
    allegro = dumbbell.add_flow(make_sender("allegro"))
    sim.run(until=20.0)
    allegro_p95 = allegro.stats.rtt_percentile(95, 10.0, 20.0)

    sim2, dumbbell2 = build(bandwidth_mbps=30.0, buffer_kb=900.0)
    vivace = dumbbell2.add_flow(make_sender("vivace"))
    sim2.run(until=20.0)
    vivace_p95 = vivace.stats.rtt_percentile(95, 10.0, 20.0)
    assert allegro_p95 > vivace_p95
