"""Behavioural tests for LEDBAT: target delay, yielding, latecomer effect."""

import pytest

from repro.protocols import CubicSender, Ledbat25Sender, LedbatSender
from repro.sim import Dumbbell, Simulator, make_rng, mbps


def build(bandwidth_mbps=20.0, rtt_ms=30.0, buffer_kb=1000.0, loss=0.0, seed=1):
    sim = Simulator()
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=mbps(bandwidth_mbps),
        rtt_s=rtt_ms / 1e3,
        buffer_bytes=buffer_kb * 1e3,
        loss_rate=loss,
        rng=make_rng(seed),
    )
    return sim, dumbbell


def test_ledbat_converges_to_target_delay():
    sim, dumbbell = build()
    sender = LedbatSender()
    flow = dumbbell.add_flow(sender)
    sim.run(until=40.0)
    # Standing queue should sit near the 100 ms target (one-way).
    queuing = dumbbell.bottleneck.queueing_delay()
    assert queuing == pytest.approx(0.100, abs=0.03)
    assert flow.stats.throughput_bps(20.0, 40.0) / 1e6 > 18.0


def test_ledbat25_converges_to_smaller_target():
    sim, dumbbell = build()
    dumbbell.add_flow(Ledbat25Sender())
    sim.run(until=40.0)
    queuing = dumbbell.bottleneck.queueing_delay()
    assert queuing == pytest.approx(0.025, abs=0.012)


def test_ledbat_yields_to_cubic_with_deep_buffer():
    """With buffer >> target, LEDBAT backs off while CUBIC fills the queue."""
    sim, dumbbell = build(buffer_kb=2000.0)  # 800 ms of queue at 20 Mbps
    ledbat_flow = dumbbell.add_flow(LedbatSender())
    cubic_flow = dumbbell.add_flow(CubicSender(), start_time=5.0)
    sim.run(until=60.0)
    cubic_share = cubic_flow.stats.throughput_bps(30.0, 60.0)
    ledbat_share = ledbat_flow.stats.throughput_bps(30.0, 60.0)
    assert cubic_share > 4.0 * ledbat_share


def test_ledbat_fails_to_yield_with_shallow_buffer():
    """Paper §6.2: when the buffer can't fit the target, LEDBAT competes."""
    sim, dumbbell = build(buffer_kb=75.0)  # 30 ms of queue < 100 ms target
    ledbat_flow = dumbbell.add_flow(LedbatSender())
    cubic_flow = dumbbell.add_flow(CubicSender(), start_time=5.0)
    sim.run(until=60.0)
    cubic_share = cubic_flow.stats.throughput_bps(30.0, 60.0)
    ledbat_share = ledbat_flow.stats.throughput_bps(30.0, 60.0)
    # LEDBAT holds a substantial (rough fair) share instead of yielding.
    assert ledbat_share > 0.5 * cubic_share


def test_ledbat_fragile_under_random_loss():
    """Fig 4: LEDBAT inherits TCP's loss halving."""
    clean_sim, clean_dumbbell = build(buffer_kb=375.0)
    clean = clean_dumbbell.add_flow(LedbatSender())
    clean_sim.run(until=30.0)
    lossy_sim, lossy_dumbbell = build(buffer_kb=375.0, loss=0.01)
    lossy = lossy_dumbbell.add_flow(LedbatSender())
    lossy_sim.run(until=30.0)
    clean_thr = clean.stats.throughput_bps(15.0, 30.0)
    lossy_thr = lossy.stats.throughput_bps(15.0, 30.0)
    assert lossy_thr < 0.5 * clean_thr


def test_ledbat_latecomer_advantage():
    """Fig 18: a later LEDBAT-25 flow dominates an earlier one."""
    sim, dumbbell = build(bandwidth_mbps=80.0, buffer_kb=1200.0)
    first = dumbbell.add_flow(Ledbat25Sender())
    second = dumbbell.add_flow(Ledbat25Sender(), start_time=20.0)
    sim.run(until=90.0)
    first_thr = first.stats.throughput_bps(60.0, 90.0)
    second_thr = second.stats.throughput_bps(60.0, 90.0)
    assert second_thr > 1.5 * first_thr


def test_base_delay_tracks_minimum():
    sim, dumbbell = build()
    sender = LedbatSender()
    dumbbell.add_flow(sender)
    sim.run(until=10.0)
    # One-way base is rtt/2 = 15 ms plus serialization.
    assert sender.base_delay() == pytest.approx(0.015, abs=0.005)


def test_invalid_target_rejected():
    with pytest.raises(ValueError):
        LedbatSender(target_s=0.0)
