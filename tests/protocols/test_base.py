"""Unit tests for the sender framework: loss detection, RTO, pacing."""

import pytest

from repro.protocols import FixedRateSender, WindowSender, make_sender
from repro.protocols.base import AckInfo, MIN_RTO_S
from repro.sim import Dumbbell, Simulator, make_rng, mbps


class RecordingWindowSender(WindowSender):
    """Window sender that records its event stream for assertions."""

    def __init__(self):
        super().__init__("recording")
        self.acks: list[AckInfo] = []
        self.losses: list[int] = []
        self.timeouts = 0

    def on_ack(self, info):
        self.acks.append(info)

    def on_loss(self, seq, sent_time):
        self.losses.append(seq)

    def on_timeout(self):
        self.timeouts += 1


def build(bandwidth_mbps=10.0, rtt_ms=40.0, buffer_kb=100.0, loss=0.0, seed=1):
    sim = Simulator()
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=mbps(bandwidth_mbps),
        rtt_s=rtt_ms / 1e3,
        buffer_bytes=buffer_kb * 1e3,
        loss_rate=loss,
        rng=make_rng(seed),
    )
    return sim, dumbbell


def test_window_sender_respects_cwnd():
    sim, dumbbell = build()
    sender = RecordingWindowSender()
    sender.cwnd = 4.0
    dumbbell.add_flow(sender)
    sim.run(until=0.02)  # less than one RTT: nothing acked yet
    assert sender.inflight_packets() == 4


def test_acks_carry_correct_rtt():
    sim, dumbbell = build(rtt_ms=40.0)
    sender = RecordingWindowSender()
    sender.cwnd = 1.0
    dumbbell.add_flow(sender)
    sim.run(until=1.0)
    assert sender.acks
    first = sender.acks[0]
    # RTT = base + serialization (1500 B @ 10 Mbps = 1.2 ms) + ack time.
    assert first.rtt == pytest.approx(0.0412, abs=0.002)
    assert first.one_way_delay < first.rtt
    assert first.nbytes == 1500


def test_random_loss_is_detected_by_gap():
    sim, dumbbell = build(loss=0.05)
    sender = RecordingWindowSender()
    sender.cwnd = 20.0
    flow = dumbbell.add_flow(sender)
    sim.run(until=10.0)
    assert sender.losses, "random losses must surface as on_loss events"
    assert flow.stats.loss_count() == len(sender.losses)


def test_lost_bytes_are_requeued_for_finite_flows():
    sim, dumbbell = build(loss=0.05)
    sender = RecordingWindowSender()
    sender.cwnd = 20.0
    flow = dumbbell.add_flow(sender, size_bytes=300_000)
    sim.run(until=30.0)
    assert flow.completed
    assert flow.stats.delivered_bytes >= 300_000
    assert sender.losses  # losses occurred and were retransmitted


def test_rto_fires_when_all_packets_lost():
    # A 1-packet buffer with heavy random loss can strand the tail.
    sim, dumbbell = build(loss=0.9, buffer_kb=3.0, seed=3)
    sender = RecordingWindowSender()
    sender.cwnd = 4.0
    dumbbell.add_flow(sender)
    sim.run(until=20.0)
    assert sender.timeouts >= 1


def test_rto_interval_floor():
    sender = RecordingWindowSender()
    assert sender._rto_interval() == 1.0  # no RTT estimate yet
    sender.srtt = 0.01
    sender.rttvar = 0.001
    assert sender._rto_interval() == MIN_RTO_S


def test_srtt_tracks_rtt():
    sim, dumbbell = build(rtt_ms=40.0)
    sender = RecordingWindowSender()
    sender.cwnd = 2.0
    dumbbell.add_flow(sender)
    sim.run(until=5.0)
    assert sender.srtt == pytest.approx(0.0415, abs=0.003)
    assert sender.min_rtt <= sender.srtt


def test_pause_and_resume_rate_sender():
    sim, dumbbell = build()
    sender = FixedRateSender(rate_bps=mbps(4.0))
    flow = dumbbell.add_flow(sender)
    sim.run(until=2.0)
    sender.pause()
    sim.run(until=4.0)
    at_pause = flow.stats.delivered_bytes
    sim.run(until=6.0)
    # Nothing delivered while paused (allow in-flight drainage margin).
    assert flow.stats.delivered_bytes - at_pause <= 3 * 1500
    sender.resume()
    sim.run(until=8.0)
    assert flow.stats.delivered_bytes > at_pause + 100_000


def test_rate_sender_inflight_cap():
    sim, dumbbell = build(bandwidth_mbps=100.0)
    sender = FixedRateSender(rate_bps=mbps(50.0))
    sender.inflight_cap = 5
    dumbbell.add_flow(sender)
    sim.run(until=0.02)
    assert sender.inflight_packets() <= 5


def test_stop_cancels_transmission():
    sim, dumbbell = build()
    sender = FixedRateSender(rate_bps=mbps(4.0))
    flow = dumbbell.add_flow(sender)
    sim.run(until=1.0)
    sender.stop()
    sent_at_stop = flow.stats.packets_sent
    sim.run(until=3.0)
    assert flow.stats.packets_sent == sent_at_stop


def test_stale_acks_after_timeout_are_ignored():
    """ACKs for packets already declared lost must not crash or double-count."""
    sim, dumbbell = build(rtt_ms=600.0)  # RTT > min RTO
    sender = RecordingWindowSender()
    sender.cwnd = 2.0
    flow = dumbbell.add_flow(sender)
    sim.run(until=10.0)
    # With a 600 ms RTT and no srtt, initial RTO (1s) may fire spuriously.
    # The invariant: acked + lost never exceeds sent.
    assert len(sender.acks) + len(sender.losses) <= flow.stats.packets_sent


def _sends_after_rate_step(use_repace):
    """Send times around a 1 -> 50 Mbps step at t=0.1 (no repace vs repace)."""
    from repro.obs import CollectingTracer
    from repro.protocols.base import RateSender

    tracer = CollectingTracer()
    sim = Simulator(tracer=tracer)
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=mbps(100.0),
        rtt_s=0.04,
        buffer_bytes=100e3,
        rng=make_rng(1),
    )
    sender = RateSender("slow", initial_rate_bps=mbps(1.0))  # ~12 ms/packet

    def step_up():
        sender.set_rate(mbps(50.0))
        if use_repace:
            sender.repace()

    dumbbell.add_flow(sender)
    sim.schedule_at(0.100, step_up)
    sim.run(until=0.2)
    return [
        e.time_s
        for e in tracer.events
        if e.kind == "link.enqueue" and e.link == "bottleneck" and e.time_s > 0.1
    ]


def test_set_rate_mid_interval_leaves_at_most_one_stale_interval():
    """Pins the audited rate-change behaviour (see RateSender.repace).

    The pacing loop recomputes its interval only after each tick, so a
    ``set_rate`` call mid-interval lets exactly the already-scheduled
    interval elapse at the old (1 Mbps, ~12 ms) pace before the new
    (50 Mbps, ~0.24 ms) rate takes over — never more than one stale
    interval.
    """
    sends = _sends_after_rate_step(use_repace=False)
    # The first send after the change rides the stale schedule: up to one
    # old interval away (12 ms + 2% jitter), and on the old pace it is
    # *later* than a fresh fast interval.
    assert 0.0 < sends[0] - 0.1 <= 0.0123
    # Every subsequent gap is at the new pace: exactly zero further
    # stale (old-pace) intervals.
    new_interval = 1500 * 8.0 / mbps(50.0)
    gaps = [b - a for a, b in zip(sends, sends[1:])]
    assert gaps and all(gap <= 1.05 * new_interval for gap in gaps)


def test_repace_applies_new_rate_immediately():
    sends = _sends_after_rate_step(use_repace=True)
    new_interval = 1500 * 8.0 / mbps(50.0)
    # No stale interval at all: the first post-change send is immediate
    # and every gap is already at the 50 Mbps pace.
    assert sends[0] - 0.1 <= 1.05 * new_interval
    gaps = [b - a for a, b in zip(sends, sends[1:])]
    assert gaps and all(gap <= 1.05 * new_interval for gap in gaps)


def test_repace_respects_paused_and_stopped_states():
    from repro.protocols.base import RateSender

    sim, dumbbell = build()
    sender = RateSender("rate", initial_rate_bps=mbps(4.0))
    flow = dumbbell.add_flow(sender)
    sim.run(until=0.5)
    sender.pause()
    sim.run(until=0.6)
    sender.repace()  # paused: must not restart the pacing loop
    assert sender._tick_event is None
    sent_paused = flow.stats.packets_sent
    sim.run(until=1.0)
    assert flow.stats.packets_sent == sent_paused
    sender.resume()
    sim.run(until=1.5)
    sender.stop()
    sender.repace()  # stopped: same
    assert sender._tick_event is None


def test_fixed_rate_sender_rate_stays_immutable():
    sender = FixedRateSender(rate_bps=mbps(4.0))
    with pytest.raises(RuntimeError):
        sender.set_rate(mbps(8.0))


@pytest.mark.parametrize(
    "proto",
    ["cubic", "reno", "bbr", "bbr-s", "copa", "vivace", "ledbat", "ledbat-25",
     "proteus-p", "proteus-s", "proteus-h"],
)
def test_every_protocol_moves_data(proto):
    sim, dumbbell = build(bandwidth_mbps=20.0)
    sender = make_sender(proto)
    flow = dumbbell.add_flow(sender)
    sim.run(until=8.0)
    achieved = flow.stats.throughput_bps(4.0, 8.0) / 1e6
    assert achieved > 1.0, f"{proto} failed to use an idle 20 Mbps link"
