"""Tests for LEDBAT++ (periodic slowdowns, 60 ms target)."""

import pytest

from repro.protocols import CubicSender, LedbatPPSender, LedbatSender, make_sender
from repro.sim import Dumbbell, Simulator, make_rng, mbps


def build(bandwidth_mbps=20.0, rtt_ms=30.0, buffer_kb=1000.0, seed=1):
    sim = Simulator()
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=mbps(bandwidth_mbps),
        rtt_s=rtt_ms / 1e3,
        buffer_bytes=buffer_kb * 1e3,
        rng=make_rng(seed),
    )
    return sim, dumbbell


def test_factory_name():
    assert isinstance(make_sender("ledbat++"), LedbatPPSender)
    assert isinstance(make_sender("ledbat-pp"), LedbatPPSender)


def test_converges_near_60ms_target():
    sim, dumbbell = build()
    flow = dumbbell.add_flow(LedbatPPSender())
    sim.run(until=30.0)
    queuing = dumbbell.bottleneck.queueing_delay()
    # Near the 60 ms target outside slowdown windows.
    assert queuing < 0.09
    assert flow.stats.throughput_bps(10.0, 30.0) / 1e6 > 12.0


def test_periodic_slowdowns_occur():
    sim, dumbbell = build()
    sender = LedbatPPSender()
    dumbbell.add_flow(sender)
    sim.run(until=60.0)
    assert sender.slowdowns >= 1


def test_slowdown_refreshes_base_delay():
    """The designed fix for the latecomer problem: a second LEDBAT++
    flow eventually observes the true base delay during slowdowns and
    the pair ends up far fairer than plain LEDBAT-25."""
    def final_split(proto):
        sim, dumbbell = build(bandwidth_mbps=40.0, buffer_kb=800.0)
        first = dumbbell.add_flow(make_sender(proto))
        second = dumbbell.add_flow(make_sender(proto), start_time=15.0)
        sim.run(until=90.0)
        return (
            first.stats.throughput_bps(60.0, 90.0) / 1e6,
            second.stats.throughput_bps(60.0, 90.0) / 1e6,
        )

    pp_first, pp_second = final_split("ledbat++")
    l25_first, l25_second = final_split("ledbat-25")
    pp_ratio = min(pp_first, pp_second) / max(pp_first, pp_second)
    l25_ratio = min(l25_first, l25_second) / max(l25_first, l25_second)
    assert pp_ratio > l25_ratio


def test_still_yields_to_cubic_with_deep_buffer():
    sim, dumbbell = build(buffer_kb=2000.0)
    scavenger = dumbbell.add_flow(LedbatPPSender())
    cubic = dumbbell.add_flow(CubicSender(), start_time=5.0)
    sim.run(until=50.0)
    cubic_thr = cubic.stats.throughput_bps(25.0, 50.0)
    scav_thr = scavenger.stats.throughput_bps(25.0, 50.0)
    assert cubic_thr > 2.0 * scav_thr


def test_lower_target_than_rfc_ledbat():
    assert LedbatPPSender().target_s < LedbatSender().target_s
