"""Campaign loop tests: determinism, checkpoint/resume, replay.

The campaigns here are tiny (a handful of short evaluations) but run the
full pipeline — genome proposal, supervised evaluation, manifest
checkpointing, counterexample archiving, shrinking — so the byte-identity
assertions cover everything ``repro attack`` writes to disk.
"""

import json

import pytest

from repro.adversary import CampaignConfig, replay_artifact, run_campaign
from repro.obs import MetricsRegistry

# Deliberately mis-tuned Proteus-S: gutting the latency-gradient (b) and
# RTT-deviation (d) penalties leaves a loss-only utility that no longer
# yields, so even a tiny campaign finds violations to archive and shrink.
MISTUNED = {
    "protocol": "proteus-s",
    "params": {"utility_params": {"b": 1.0, "d": 1.0}},
}


def tiny_config(**overrides) -> CampaignConfig:
    defaults = dict(
        objective="primary_harm",
        controller=MISTUNED,
        budget=4,
        seed=3,
        generation_size=2,
        elite_count=2,
        duration_s=3.0,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def campaign_bytes(out_dir) -> dict:
    return {
        name: (out_dir / name).read_bytes()
        for name in ("campaign.json", "manifest.jsonl", "best.json")
    }


def test_same_seed_same_budget_is_byte_identical(tmp_path):
    result_a = run_campaign(tiny_config(), tmp_path / "a", jobs=1, shrink=False)
    result_b = run_campaign(tiny_config(), tmp_path / "b", jobs=1, shrink=False)
    assert campaign_bytes(tmp_path / "a") == campaign_bytes(tmp_path / "b")
    assert [e.score for e in result_a.evaluated] == [
        e.score for e in result_b.evaluated
    ]


def test_jobs_count_does_not_change_outputs(tmp_path):
    run_campaign(tiny_config(), tmp_path / "serial", jobs=1, shrink=False)
    run_campaign(tiny_config(), tmp_path / "pool", jobs=4, shrink=False)
    assert campaign_bytes(tmp_path / "serial") == campaign_bytes(tmp_path / "pool")


def test_interrupted_campaign_resumes_byte_identically(tmp_path):
    full = tmp_path / "full"
    run_campaign(tiny_config(), full, jobs=1)

    # Simulate a mid-campaign kill: same config record, manifest truncated
    # to the first two finished evaluations.
    interrupted = tmp_path / "interrupted"
    interrupted.mkdir()
    (interrupted / "campaign.json").write_bytes((full / "campaign.json").read_bytes())
    lines = (full / "manifest.jsonl").read_bytes().splitlines(keepends=True)
    assert len(lines) == 4
    (interrupted / "manifest.jsonl").write_bytes(b"".join(lines[:2]))

    run_campaign(tiny_config(), interrupted, jobs=1, resume=True)
    for name in ("manifest.jsonl", "best.json", "best_shrunk.json"):
        assert (interrupted / name).read_bytes() == (full / name).read_bytes()


def test_existing_campaign_requires_resume_flag(tmp_path):
    run_campaign(tiny_config(), tmp_path / "camp", jobs=1, shrink=False)
    with pytest.raises(FileExistsError):
        run_campaign(tiny_config(), tmp_path / "camp", jobs=1, shrink=False)


def test_resume_rejects_changed_config(tmp_path):
    run_campaign(tiny_config(), tmp_path / "camp", jobs=1, shrink=False)
    with pytest.raises(ValueError, match="config mismatch"):
        run_campaign(
            tiny_config(budget=6), tmp_path / "camp", jobs=1, resume=True
        )


def test_counterexamples_replay_bit_exactly(tmp_path):
    result = run_campaign(tiny_config(), tmp_path / "camp", jobs=1)
    assert result.violations, "mis-tuned controller must produce violations"
    artifacts = sorted((tmp_path / "camp" / "counterexamples").glob("*.json"))
    assert artifacts
    report = replay_artifact(artifacts[-1])
    assert report["match"] is True
    assert report["recorded_score"] == report["recomputed_score"]
    # best.json replays too (it is the same artifact format).
    assert replay_artifact(tmp_path / "camp" / "best.json")["match"] is True


def test_replay_detects_tampered_artifact(tmp_path):
    run_campaign(tiny_config(), tmp_path / "camp", jobs=1, shrink=False)
    path = tmp_path / "camp" / "best.json"
    record = json.loads(path.read_text())
    record["item"]["genome"]["bandwidth_mbps"] += 1.0
    path.write_text(json.dumps(record))
    assert replay_artifact(path)["match"] is False


def test_campaign_metrics_and_summary(tmp_path):
    registry = MetricsRegistry()
    result = run_campaign(
        tiny_config(), tmp_path / "camp", jobs=1, shrink=False, metrics=registry
    )
    snap = registry.snapshot()
    assert (
        snap["counters"]["adversary.evals{objective=primary_harm}"]
        == len(result.evaluated)
        == 4
    )
    assert snap["counters"]["adversary.violations{objective=primary_harm}"] == len(
        result.violations
    )
    summary = result.summary()
    assert summary["evaluations"] == 4
    assert summary["best_score"] == result.best.score
