"""Acceptance harness for the scavenger guarantee (pinned seeds).

Two campaigns with identical search knobs — same seed, budget, duration,
threshold — differing only in the controller under test:

* a deliberately mis-tuned Proteus-S (latency-gradient and RTT-deviation
  penalties gutted) must be *caught*: the search finds a ``primary_harm``
  violation within the budget;
* stock Proteus-S must *survive*: no evaluation crosses the threshold.

The 20 s evaluation duration matters: over short windows the scavenger's
convergence transient (it starts fast, then learns to yield) dominates
the harm measurement and stock Proteus-S looks guilty too — see
``docs/ADVERSARY.md``.  At 20 s the transient has decayed (stock's worst
found score stays well under 0.30) while the mis-tuned controller's harm
is *persistent* and scores far above it.

The knobs are pinned: this is a seeded regression test, not a proof.
Deeper searches *do* find stock violations in regimes the guarantee
excludes by design — most notably random loss beyond the utility
function's 5% tolerance point, where a loss-tolerant scavenger
outcompetes a loss-based primary (walkthrough in ``EXPERIMENTS.md``).
"""

from repro.adversary import CampaignConfig, run_campaign

SEARCH_KNOBS = dict(
    objective="primary_harm",
    budget=12,
    seed=7,
    generation_size=6,
    elite_count=5,
    duration_s=20.0,
    threshold=0.30,
)

MISTUNED = {
    "protocol": "proteus-s",
    "params": {"utility_params": {"b": 1.0, "d": 1.0}},
}
STOCK = {"protocol": "proteus-s", "params": {}}


def test_search_catches_planted_mistuning(tmp_path):
    result = run_campaign(
        CampaignConfig(controller=MISTUNED, **SEARCH_KNOBS),
        tmp_path / "mistuned",
        jobs=4,
        shrink=False,
    )
    assert result.violations, (
        "the planted mis-tuned Proteus-S must violate primary_harm "
        f"within {SEARCH_KNOBS['budget']} evaluations"
    )
    assert result.best is not None and result.best.violation
    assert result.best.score > SEARCH_KNOBS["threshold"]
    # Found early: random sampling alone already exposes it.
    assert min(v.index for v in result.violations) < SEARCH_KNOBS["generation_size"]


def test_stock_proteus_survives_same_budget(tmp_path):
    result = run_campaign(
        CampaignConfig(controller=STOCK, **SEARCH_KNOBS),
        tmp_path / "stock",
        jobs=4,
        shrink=False,
    )
    assert not result.violations, (
        "stock Proteus-S crossed the primary_harm threshold: "
        f"{[(v.index, v.score) for v in result.violations]}"
    )
    assert result.best is not None
    assert result.best.score < SEARCH_KNOBS["threshold"]
