"""Unit tests for the scenario genome: round-trip, sampling, variation."""

import pytest

from repro.adversary import ScenarioGenome, TrafficSpec, crossover, mutate, sample_genome
from repro.adversary.genome import HOSTILE_PROTOCOLS, rounded_scalars
from repro.core.rng import Rng
from repro.harness import BandwidthStep, Outage, Timeline
from repro.protocols import PROTOCOL_NAMES


def test_round_trip_is_exact():
    rng = Rng("genome:roundtrip")
    for _ in range(20):
        genome = sample_genome(rng)
        rebuilt = ScenarioGenome.from_dict(genome.to_dict())
        assert rebuilt == genome
        assert rebuilt.to_dict() == genome.to_dict()


def test_sampling_is_deterministic():
    a = [sample_genome(Rng("genome:det")) for _ in range(5)]
    b = [sample_genome(Rng("genome:det")) for _ in range(5)]
    assert a == b


def test_sampled_traffic_uses_known_protocols():
    rng = Rng("genome:protocols")
    for _ in range(50):
        for flow in sample_genome(rng).traffic:
            assert flow.protocol in PROTOCOL_NAMES


def test_hostile_protocols_are_registered():
    for name in HOSTILE_PROTOCOLS:
        assert name in PROTOCOL_NAMES


def test_validation_rejects_bad_scalars():
    with pytest.raises(ValueError):
        ScenarioGenome(bandwidth_mbps=0.0, rtt_ms=30.0, buffer_kb=100.0, duration_s=8.0)
    with pytest.raises(ValueError):
        ScenarioGenome(bandwidth_mbps=10.0, rtt_ms=30.0, buffer_kb=100.0, duration_s=-1.0)
    with pytest.raises(ValueError):
        ScenarioGenome(
            bandwidth_mbps=10.0,
            rtt_ms=30.0,
            buffer_kb=100.0,
            duration_s=8.0,
            noise_severity=-0.1,
        )


def test_validation_rejects_invalid_timeline():
    unsorted = Timeline(
        (
            BandwidthStep(at_s=4.0, bandwidth_mbps=10.0),
            BandwidthStep(at_s=1.0, bandwidth_mbps=20.0),
        )
    )
    with pytest.raises(ValueError):
        ScenarioGenome(
            bandwidth_mbps=10.0,
            rtt_ms=30.0,
            buffer_kb=100.0,
            duration_s=8.0,
            timeline=unsorted,
        )


def test_size_counts_steps_flows_and_unrounded_scalars():
    plain = ScenarioGenome(
        bandwidth_mbps=10.0, rtt_ms=30.0, buffer_kb=100.0, duration_s=8.0
    )
    assert plain.size() == 0
    busy = ScenarioGenome(
        bandwidth_mbps=10.123,  # one unrounded scalar
        rtt_ms=30.0,
        buffer_kb=100.0,
        duration_s=8.0,
        timeline=Timeline((BandwidthStep(at_s=2.0, bandwidth_mbps=5.0),)),
        traffic=(TrafficSpec(protocol="onoff"),),
    )
    assert busy.size() == 3


def test_rounded_scalars_shrinks_or_returns_none():
    plain = ScenarioGenome(
        bandwidth_mbps=10.0, rtt_ms=30.0, buffer_kb=100.0, duration_s=8.0
    )
    assert rounded_scalars(plain) is None
    rough = ScenarioGenome(
        bandwidth_mbps=10.123, rtt_ms=29.876, buffer_kb=100.0, duration_s=8.0
    )
    rounded = rounded_scalars(rough)
    assert rounded is not None
    assert rounded.size() < rough.size()
    assert rounded.bandwidth_mbps == pytest.approx(10.1)
    assert rounded.rtt_ms == pytest.approx(29.9)


def test_mutation_always_yields_valid_genomes():
    rng = Rng("genome:mutate")
    genome = sample_genome(rng)
    for _ in range(60):
        genome = mutate(genome, rng)  # __post_init__ validates
        assert len(genome.traffic) <= 4
        genome.timeline.validate()


def test_crossover_mixes_parents_deterministically():
    rng = Rng("genome:cross")
    a, b = sample_genome(rng), sample_genome(rng)
    child1 = crossover(a, b, Rng("genome:cross:child"))
    child2 = crossover(a, b, Rng("genome:cross:child"))
    assert child1 == child2
    assert child1.bandwidth_mbps in (a.bandwidth_mbps, b.bandwidth_mbps)
    assert len(child1.traffic) <= 4


def test_outage_overlap_repair_in_sampling_helpers():
    # Two overlapping outages fed through perturb's repair path: slid
    # apart, duration preserved, validate passes.
    rng = Rng("genome:outage")
    timeline = Timeline(
        (
            Outage(start_s=1.0, end_s=2.0),
            Outage(start_s=1.5, end_s=2.5),
        )
    )
    repaired = timeline.perturb(rng, time_jitter_s=0.0, magnitude_frac=0.0)
    repaired.validate()
    first, second = repaired.steps
    assert second.start_s >= first.end_s
    assert second.end_s - second.start_s == pytest.approx(1.0)


def test_from_dict_rejects_unknown_schema():
    genome = sample_genome(Rng("genome:schema"))
    data = genome.to_dict()
    data["schema"] = 99
    with pytest.raises(ValueError):
        ScenarioGenome.from_dict(data)
