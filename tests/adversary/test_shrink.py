"""Shrinker tests: monotonic reduction, still-violating invariant."""

import pytest

from repro.adversary import ScenarioGenome, TrafficSpec, eval_item, shrink_item
from repro.adversary.shrink import ShrinkResult
from repro.harness import BandwidthStep, Timeline

MISTUNED = {
    "protocol": "proteus-s",
    "params": {"utility_params": {"b": 1.0, "d": 1.0}},
}

# A bare low-bandwidth link the mis-tuned controller violates on, padded
# with clutter the shrinker should strip: an irrelevant timeline step, an
# extra traffic flow, and unrounded scalars.
CLUTTERED = ScenarioGenome(
    bandwidth_mbps=16.123,
    rtt_ms=25.0,
    buffer_kb=77.0,
    duration_s=3.0,
    timeline=Timeline((BandwidthStep(at_s=2.5, bandwidth_mbps=15.0),)),
    traffic=(TrafficSpec(protocol="onoff", start_s=1.0, params={"on_mbps": 3.0}),),
)


def test_shrink_reduces_size_and_preserves_violation():
    item = eval_item(CLUTTERED, objective="primary_harm", controller=MISTUNED, seed=3)
    result = shrink_item(item)
    assert isinstance(result, ShrinkResult)
    assert result.parent_size == CLUTTERED.size() == 3
    assert result.reduced
    assert result.size < result.parent_size
    assert result.value["violation"] is True
    assert result.steps >= 1
    # The shrunk item is itself a valid, strictly smaller eval item.
    shrunk_genome = ScenarioGenome.from_dict(result.item["genome"])
    assert shrunk_genome.size() == result.size


def test_shrink_steps_are_monotonic():
    sizes = []
    item = eval_item(CLUTTERED, objective="primary_harm", controller=MISTUNED, seed=3)
    shrink_item(item, on_step=lambda parent, size, score: sizes.append(size))
    assert sizes == sorted(sizes, reverse=True)
    assert all(size < CLUTTERED.size() for size in sizes)


def test_shrink_requires_a_violating_item():
    benign = ScenarioGenome(
        bandwidth_mbps=50.0, rtt_ms=30.0, buffer_kb=375.0, duration_s=3.0
    )
    item = eval_item(
        benign,
        objective="primary_harm",
        controller={"protocol": "proteus-s", "params": {}},
        seed=3,
        threshold=0.9,
    )
    with pytest.raises(ValueError, match="violating"):
        shrink_item(item)


def test_shrink_rejects_crashing_candidates():
    item = eval_item(CLUTTERED, objective="primary_harm", controller=MISTUNED, seed=3)

    calls = {"n": 0}
    real_scores = {}

    def flaky_evaluate(candidate):
        from repro.adversary import evaluate_genome

        calls["n"] += 1
        if calls["n"] == 2:  # first *candidate* evaluation crashes
            raise RuntimeError("boom")
        value = evaluate_genome(candidate)
        real_scores[calls["n"]] = value["score"]
        return value

    result = shrink_item(item, evaluate=flaky_evaluate)
    # The crash rejected one candidate but shrinking still progressed.
    assert result.reduced
    assert result.value["violation"] is True
