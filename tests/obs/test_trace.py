"""Unit tests for the tracing half of ``repro.obs``."""

import json

import pytest

from repro.obs import (
    CollectingTracer,
    JsonlTraceSink,
    RingBufferTracer,
    TeeTracer,
    TraceEvent,
    Tracer,
    active_tracer,
    event_to_json,
    events_to_jsonl,
    filter_events,
    install_tracer,
    kind_matches,
    read_jsonl,
    trace_digest,
    tracing,
)


def test_trace_event_to_dict_shape():
    event = TraceEvent("link.drop", 1.5, flow=2, link="bottleneck", fields={"seq": 7})
    assert event.to_dict() == {
        "t": 1.5,
        "kind": "link.drop",
        "flow": 2,
        "link": "bottleneck",
        "seq": 7,
    }
    bare = TraceEvent("sim.run.begin", 0.0)
    assert bare.to_dict() == {"t": 0.0, "kind": "sim.run.begin"}


def test_event_to_json_is_canonical():
    # Same logical event, different insertion order -> same bytes.
    a = event_to_json({"t": 1.0, "kind": "x", "b": 2, "a": 1})
    b = event_to_json({"a": 1, "b": 2, "kind": "x", "t": 1.0})
    assert a == b
    assert " " not in a  # fixed separators, no whitespace


def test_jsonl_and_digest_round_trip(tmp_path):
    tracer = CollectingTracer()
    tracer.emit("mi.start", 0.1, flow=1, mi_id=1)
    tracer.emit("mi.end", 0.2, flow=1, mi_id=1, utility=3.5)
    text = tracer.to_jsonl()
    assert text.endswith("\n") and len(text.splitlines()) == 2
    assert trace_digest(tracer.events) == trace_digest(tracer.to_dicts())
    path = tmp_path / "trace.jsonl"
    path.write_text(text)
    assert read_jsonl(path) == tracer.to_dicts()
    assert events_to_jsonl([]) == ""


def test_kind_matches_namespaces():
    assert kind_matches("link.drop", "link")
    assert kind_matches("link.drop", "link.drop")
    assert not kind_matches("link.drop", "link.dr")
    assert not kind_matches("linkage.drop", "link")


def test_filter_events_all_dimensions():
    events = [
        {"t": 0.0, "kind": "link.enqueue", "flow": 1, "link": "bottleneck"},
        {"t": 0.1, "kind": "link.drop", "flow": 2, "link": "bottleneck"},
        {"t": 0.2, "kind": "mi.start", "flow": 2},
        {"t": 0.3, "kind": "sim.run.end"},
    ]
    assert len(filter_events(events)) == 4
    assert [e["kind"] for e in filter_events(events, flows=[2])] == [
        "link.drop",
        "mi.start",
    ]
    assert len(filter_events(events, links=["bottleneck"])) == 2
    assert len(filter_events(events, kinds=["link"])) == 2
    assert len(filter_events(events, kinds=["link.drop", "mi"])) == 2
    assert filter_events(events, flows=[2], kinds=["mi"]) == [events[2]]


def test_ring_buffer_keeps_tail_and_counts_drops():
    ring = RingBufferTracer(capacity=3)
    for i in range(5):
        ring.emit("tick", float(i), seq=i)
    assert len(ring) == 3
    assert ring.dropped == 2
    assert [e["seq"] for e in ring.snapshot()] == [2, 3, 4]
    with pytest.raises(ValueError):
        RingBufferTracer(capacity=0)


def test_jsonl_sink_streams_and_digest_matches(tmp_path):
    path = tmp_path / "sink.jsonl"
    with JsonlTraceSink(path) as sink:
        sink.emit("a", 0.0, flow=1)
        sink.emit("b", 1.0, link="reverse", extra=2.5)
        assert sink.count == 2
        running = sink.digest()
    records = read_jsonl(path)
    assert [r["kind"] for r in records] == ["a", "b"]
    assert trace_digest(records) == running
    with pytest.raises(ValueError):
        sink.emit("c", 2.0)


def test_tee_fans_out():
    first, second = CollectingTracer(), CollectingTracer()
    tee = TeeTracer(first, second)
    tee.emit("x", 0.5, flow=3, payload=1)
    assert len(first) == len(second) == 1
    assert first.to_dicts() == second.to_dicts()


def test_global_tracer_install_and_scope():
    assert active_tracer() is None
    tracer = CollectingTracer()
    previous = install_tracer(tracer)
    try:
        assert previous is None
        assert active_tracer() is tracer
    finally:
        install_tracer(previous)
    assert active_tracer() is None
    with tracing(tracer) as scoped:
        assert scoped is tracer
        assert active_tracer() is tracer
    assert active_tracer() is None


def test_sinks_satisfy_tracer_protocol():
    for sink in (
        CollectingTracer(),
        RingBufferTracer(),
        TeeTracer(),
    ):
        assert isinstance(sink, Tracer)


def test_digest_depends_on_content():
    one = [{"t": 0.0, "kind": "a"}]
    other = [{"t": 0.0, "kind": "b"}]
    assert trace_digest(one) != trace_digest(other)
    # Digest is over canonical bytes: dict order is irrelevant.
    assert trace_digest([{"kind": "a", "t": 0.0}]) == trace_digest(one)
    assert json.loads(event_to_json(one[0])) == one[0]
