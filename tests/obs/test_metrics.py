"""Unit tests for the metrics half of ``repro.obs``."""

import json

import pytest

from repro.obs import MetricsRegistry, PeriodicSampler, empty_snapshot
from repro.sim import Simulator


def test_counter_gauge_basics():
    registry = MetricsRegistry()
    counter = registry.counter("flow.losses", flow=1)
    counter.inc()
    counter.inc(3)
    assert counter.value == 4
    with pytest.raises(ValueError):
        counter.inc(-1)
    gauge = registry.gauge("run.utilization")
    assert gauge.value is None
    gauge.set(0.93)
    assert gauge.value == 0.93


def test_get_or_create_returns_same_instrument():
    registry = MetricsRegistry()
    a = registry.counter("c", link="bottleneck")
    b = registry.counter("c", link="bottleneck")
    assert a is b
    other = registry.counter("c", link="reverse")
    assert other is not a


def test_series_keys_sort_labels():
    registry = MetricsRegistry()
    registry.counter("x", b=2, a=1).inc()
    snapshot = registry.snapshot()
    assert list(snapshot["counters"]) == ["x{a=1,b=2}"]


def test_snapshot_is_canonical_and_json_safe():
    first, second = MetricsRegistry(), MetricsRegistry()
    # Same observations, different creation order.
    first.counter("n", flow=1).inc(2)
    first.gauge("g").set(1.5)
    second.gauge("g").set(1.5)
    second.counter("n", flow=1).inc(2)
    assert first.snapshot() == second.snapshot()
    encoded = json.dumps(first.snapshot(), sort_keys=True)
    assert json.loads(encoded) == first.snapshot()
    assert empty_snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_histogram_without_bounds():
    registry = MetricsRegistry()
    hist = registry.histogram("rtt_s", flow=2)
    for value in (0.03, 0.05, 0.01):
        hist.observe(value)
    assert hist.count == 3
    assert hist.min == 0.01 and hist.max == 0.05
    assert hist.mean() == pytest.approx(0.03)
    entry = registry.snapshot()["histograms"]["rtt_s{flow=2}"]
    assert entry["count"] == 3
    assert "bounds" not in entry


def test_histogram_buckets():
    registry = MetricsRegistry()
    hist = registry.histogram("backlog", bounds=(10.0, 100.0))
    for value in (5.0, 10.0, 50.0, 500.0):
        hist.observe(value)
    entry = registry.snapshot()["histograms"]["backlog"]
    assert entry["bounds"] == [10.0, 100.0]
    # <=10, <=100, +inf — each observation in exactly one bucket.
    assert entry["buckets"] == [2, 1, 1]
    assert sum(entry["buckets"]) == entry["count"]
    assert registry.histogram("empty").mean() is None


def test_periodic_sampler_runs_on_sim_time():
    sim = Simulator()
    seen = []
    PeriodicSampler(sim, 0.5, seen.append)
    sim.run(until=2.4)
    assert seen == pytest.approx([0.5, 1.0, 1.5, 2.0])


def test_periodic_sampler_cancel_and_validation():
    sim = Simulator()
    seen = []
    sampler = PeriodicSampler(sim, 0.5, seen.append)

    def stop() -> None:
        sampler.cancel()

    sim.schedule_fast(1.2, stop)
    sim.run(until=5.0)
    assert seen == pytest.approx([0.5, 1.0])
    with pytest.raises(ValueError):
        PeriodicSampler(sim, 0.0, seen.append)
