"""Determinism regression gate: same seed, bit-identical traces.

Every stochastic draw in the simulator flows through a seeded
:class:`repro.sim.rng.Rng`, so re-running a scenario with the same seed
must reproduce every ACK time, RTT sample and loss event exactly.  These
tests run each scenario ``--determinism-repeats`` times (default 2) and
compare sha256 digests over the exact ``float.hex()`` trace values —
one ULP of drift fails the gate.
"""

import pytest

from repro.devtools import stats_digest, trace_digest
from repro.harness import FlowSpec, LinkConfig, pmap, run_flows

SCENARIOS = {
    "cubic-vs-proteus-s-noisy": dict(
        specs=[
            FlowSpec("cubic"),
            FlowSpec("proteus-s", start_time=2.0),
        ],
        config=LinkConfig(
            bandwidth_mbps=20.0, rtt_ms=30.0, buffer_kb=150.0,
            loss_rate=0.005, noise_severity=0.3,
        ),
        duration_s=6.0,
    ),
    "homogeneous-proteus-s": dict(
        specs=[FlowSpec("proteus-s"), FlowSpec("proteus-s", start_time=1.0)],
        config=LinkConfig(bandwidth_mbps=12.0, rtt_ms=20.0, buffer_kb=90.0),
        duration_s=5.0,
    ),
    "vivace-lossy": dict(
        specs=[FlowSpec("vivace")],
        config=LinkConfig(
            bandwidth_mbps=10.0, rtt_ms=40.0, buffer_kb=75.0, loss_rate=0.01,
        ),
        duration_s=5.0,
    ),
}


def _digest(name, seed):
    scenario = SCENARIOS[name]
    result = run_flows(
        scenario["specs"], scenario["config"], duration_s=scenario["duration_s"], seed=seed
    )
    return stats_digest(result.stats)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_same_seed_same_trace(name, determinism_repeats):
    digests = {_digest(name, seed=7) for _ in range(determinism_repeats)}
    assert len(digests) == 1, f"{name}: same-seed runs diverged"


def test_different_seeds_differ():
    # Digest sanity: the gate can actually tell traces apart.
    assert _digest("vivace-lossy", seed=7) != _digest("vivace-lossy", seed=8)


def _digest_for_seed(seed: int) -> str:
    """Module-level (hence picklable) experiment for the parallel gate."""
    return _digest("vivace-lossy", seed=seed)


def test_parallel_execution_matches_serial_digests():
    """``pmap`` with 4 workers == 1 worker, byte-for-byte.

    The executor promise: fanning seeded runs across processes changes
    wall-clock only — results come back ordered by seed with traces
    bit-identical to a serial run.
    """
    seeds = [7, 8, 9, 10]
    serial = pmap(_digest_for_seed, seeds, jobs=1)
    parallel = pmap(_digest_for_seed, seeds, jobs=4)
    assert parallel == serial
    assert len(set(serial)) == len(seeds)  # distinct seeds, distinct traces


def test_trace_digest_sensitivity():
    result = run_flows(
        SCENARIOS["vivace-lossy"]["specs"],
        SCENARIOS["vivace-lossy"]["config"],
        duration_s=SCENARIOS["vivace-lossy"]["duration_s"],
        seed=7,
    )
    stats = result.stats[0]
    before = trace_digest(stats)
    assert trace_digest(stats) == before  # digesting is pure
    original = stats.rtts[0]
    stats.rtts[0] = original + 1e-15  # one-ULP-scale perturbation
    assert trace_digest(stats) != before
    stats.rtts[0] = original
    assert trace_digest(stats) == before
