"""Unit tests for the link model: serialization, queueing, drops, noise."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import GaussianJitter, Link, Packet, Simulator


class TimedSink:
    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def receive(self, packet):
        self.arrivals.append((self.sim.now, packet))


def make_link(sim, bw=8e6, delay=0.01, buffer_bytes=float("inf"), **kw):
    return Link(sim, bandwidth_bps=bw, delay_s=delay, buffer_bytes=buffer_bytes, **kw)


def test_single_packet_delivery_time():
    sim = Simulator()
    link = make_link(sim, bw=8e6, delay=0.01)  # 1 MB/s
    sink = TimedSink(sim)
    packet = Packet(flow_id=1, seq=1, size_bytes=1000)
    link.send(packet, sink)
    sim.run()
    # 1000 bytes at 1 MB/s = 1 ms serialization + 10 ms propagation.
    assert sink.arrivals[0][0] == pytest.approx(0.011)


def test_back_to_back_packets_queue_behind_each_other():
    sim = Simulator()
    link = make_link(sim, bw=8e6, delay=0.0)
    sink = TimedSink(sim)
    for seq in range(3):
        link.send(Packet(1, seq, size_bytes=1000), sink)
    sim.run()
    times = [t for t, _ in sink.arrivals]
    assert times == pytest.approx([0.001, 0.002, 0.003])


def test_tail_drop_when_buffer_full():
    sim = Simulator()
    # Buffer of 2000 bytes: two packets queue, subsequent ones drop.
    link = make_link(sim, bw=8e6, delay=0.0, buffer_bytes=2000)
    sink = TimedSink(sim)
    results = [link.send(Packet(1, seq, size_bytes=1000), sink) for seq in range(5)]
    sim.run()
    assert results[0] is True  # in service immediately (empty backlog)
    assert sum(results) == len(sink.arrivals)
    assert link.stats.tail_drops == 5 - sum(results)
    assert link.stats.tail_drops >= 2


def test_backlog_drains_over_time():
    sim = Simulator()
    link = make_link(sim, bw=8e6, delay=0.0, buffer_bytes=4000)
    sink = TimedSink(sim)
    for seq in range(4):
        link.send(Packet(1, seq, size_bytes=1000), sink)
    assert link.backlog_bytes() == pytest.approx(4000)
    sim.run(until=0.002)
    assert link.backlog_bytes() == pytest.approx(2000)
    # Space freed: a new packet is accepted again.
    assert link.send(Packet(1, 99, size_bytes=1000), sink)


def test_queueing_delay_matches_backlog():
    sim = Simulator()
    link = make_link(sim, bw=8e6, delay=0.0)
    sink = TimedSink(sim)
    for seq in range(10):
        link.send(Packet(1, seq, size_bytes=1000), sink)
    assert link.queueing_delay() == pytest.approx(0.010)


def test_random_loss_drops_fraction():
    sim = Simulator()
    link = make_link(
        sim, bw=800e6, delay=0.0, loss_rate=0.3, rng=random.Random(7)
    )
    sink = TimedSink(sim)
    n = 5000
    for seq in range(n):
        link.send(Packet(1, seq, size_bytes=100), sink)
    sim.run()
    loss_fraction = link.stats.random_losses / n
    assert 0.25 < loss_fraction < 0.35
    assert len(sink.arrivals) == n - link.stats.random_losses


def test_noise_never_reorders_deliveries():
    sim = Simulator()
    link = make_link(
        sim,
        bw=8e6,
        delay=0.005,
        noise=GaussianJitter(std_s=0.020),
        rng=random.Random(3),
    )
    sink = TimedSink(sim)
    for seq in range(200):
        sim.schedule(seq * 0.001, link.send, Packet(1, seq, size_bytes=500), sink)
    sim.run()
    seqs = [p.seq for _, p in sink.arrivals]
    assert seqs == sorted(seqs)
    times = [t for t, _ in sink.arrivals]
    assert times == sorted(times)


def test_max_backlog_counts_accepted_packet():
    # Regression: peak occupancy includes the packet that just arrived,
    # so a single send into an empty link already records its size.
    sim = Simulator()
    link = make_link(sim, bw=8e6, delay=0.0)
    sink = TimedSink(sim)
    link.send(Packet(1, 0, size_bytes=1000), sink)
    assert link.stats.max_backlog_bytes == pytest.approx(1000)


def test_bandwidth_change_preserves_byte_backlog():
    sim = Simulator()
    link = make_link(sim, bw=8e6, delay=0.0, buffer_bytes=4000)
    sink = TimedSink(sim)
    for seq in range(4):
        link.send(Packet(1, seq, size_bytes=1000), sink)
    assert link.backlog_bytes() == pytest.approx(4000)
    assert link.queueing_delay() == pytest.approx(0.004)
    link.set_bandwidth_bps(4e6)  # halve the rate mid-backlog
    # Bytes are invariant under the remap; the drain time doubles.
    assert link.backlog_bytes() == pytest.approx(4000)
    assert link.queueing_delay() == pytest.approx(0.008)
    assert link.stats.rate_changes == 1
    # The buffer bound still holds against the remapped backlog.
    assert not link.send(Packet(1, 99, size_bytes=1000), sink)
    assert link.stats.tail_drops == 1


def test_fifo_preserved_across_rate_increase():
    sim = Simulator()
    link = make_link(sim, bw=1e6, delay=0.0)
    sink = TimedSink(sim)

    def burst(first_seq):
        for seq in range(first_seq, first_seq + 5):
            link.send(Packet(1, seq, size_bytes=1000), sink)

    burst(0)  # queued at the slow rate
    sim.schedule(0.001, link.set_bandwidth_bps, 100e6)
    sim.schedule(0.0011, burst, 5)  # fast packets behind slow deliveries
    sim.run()
    assert len(sink.arrivals) == 10
    seqs = [p.seq for _, p in sink.arrivals]
    assert seqs == sorted(seqs)
    times = [t for t, _ in sink.arrivals]
    assert times == sorted(times)


def test_outage_window_drops_offered_packets():
    sim = Simulator()
    link = make_link(sim, bw=8e6, delay=0.0)
    sink = TimedSink(sim)
    assert link.send(Packet(1, 0, size_bytes=1000), sink)
    link.set_down(True)
    assert link.is_down()
    assert not link.send(Packet(1, 1, size_bytes=1000), sink)
    assert link.stats.outage_drops == 1
    link.set_down(False)
    assert link.send(Packet(1, 2, size_bytes=1000), sink)
    sim.run()
    # The pre-outage packet was already past the serializer and arrives.
    assert [p.seq for _, p in sink.arrivals] == [0, 2]


def test_delay_change_applies_to_new_packets_and_tracks_min():
    sim = Simulator()
    link = make_link(sim, bw=8e6, delay=0.010)
    sink = TimedSink(sim)
    link.send(Packet(1, 0, size_bytes=1000), sink)
    link.set_delay_s(0.050)
    link.send(Packet(1, 1, size_bytes=1000), sink)
    sim.run()
    assert sink.arrivals[0][0] == pytest.approx(0.011)
    assert sink.arrivals[1][0] == pytest.approx(0.052)
    # min_delay_s keeps the floor for the RTT invariant.
    assert link.min_delay_s == pytest.approx(0.010)
    link.set_delay_s(0.002)
    assert link.min_delay_s == pytest.approx(0.002)


def test_stateful_loss_model_replaces_bernoulli_draw():
    class AlwaysLose:
        def is_lost(self, rng):
            return True

    sim = Simulator()
    link = make_link(sim, bw=8e6, delay=0.0, loss_model=AlwaysLose())
    sink = TimedSink(sim)
    assert link.send(Packet(1, 0, size_bytes=1000), sink)
    # The lost packet still consumed transmitter time...
    assert link.queueing_delay() == pytest.approx(0.001)
    sim.run()
    # ...but never arrives.
    assert sink.arrivals == []
    assert link.stats.random_losses == 1


def test_invalid_link_parameters_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, bandwidth_bps=0, delay_s=0.01)
    with pytest.raises(ValueError):
        Link(sim, bandwidth_bps=1e6, delay_s=-1)
    with pytest.raises(ValueError):
        Link(sim, bandwidth_bps=1e6, delay_s=0.0, loss_rate=1.0)


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=40, max_value=1500), min_size=1, max_size=50),
    bw_mbps=st.floats(min_value=1.0, max_value=1000.0),
)
def test_property_work_conservation(sizes, bw_mbps):
    """Total delivery time of a burst equals sum of serialization times."""
    sim = Simulator()
    link = make_link(sim, bw=bw_mbps * 1e6, delay=0.0)
    sink = TimedSink(sim)
    for seq, size in enumerate(sizes):
        link.send(Packet(1, seq, size_bytes=size), sink)
    sim.run()
    expected = sum(s * 8.0 / (bw_mbps * 1e6) for s in sizes)
    assert sink.arrivals[-1][0] == pytest.approx(expected, rel=1e-9)
    assert len(sink.arrivals) == len(sizes)


@settings(max_examples=20, deadline=None)
@given(buffer_packets=st.integers(min_value=1, max_value=20))
def test_property_drops_bounded_by_buffer(buffer_packets):
    """An instantaneous burst into a k-packet buffer accepts exactly k.

    The analytic queue counts the in-service packet's unsent bytes as
    backlog, so the buffer limit covers in-service + queued data.
    """
    sim = Simulator()
    link = make_link(sim, bw=8e6, delay=0.0, buffer_bytes=buffer_packets * 1000)
    sink = TimedSink(sim)
    n = buffer_packets + 10
    accepted = sum(
        1 if link.send(Packet(1, seq, size_bytes=1000), sink) else 0
        for seq in range(n)
    )
    sim.run()
    assert accepted == buffer_packets
    assert link.stats.tail_drops == n - accepted
