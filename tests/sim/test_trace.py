"""Unit tests for per-flow statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FlowStats


def filled_stats():
    stats = FlowStats(flow_id=7)
    for i in range(10):
        stats.record_ack(now=float(i), nbytes=1000, rtt_s=0.030 + 0.001 * i)
    return stats


def test_throughput_over_window():
    stats = filled_stats()
    # ACKs at t=0..9, 1000 bytes each: window [0, 9] holds all ten.
    assert stats.throughput_bps(0.0, 9.0) == pytest.approx(10 * 1000 * 8 / 9.0)
    # Window [4.5, 9] holds acks at 5..9 (five).
    assert stats.throughput_bps(4.5, 9.0) == pytest.approx(5 * 1000 * 8 / 4.5)


def test_throughput_empty_window_is_zero():
    stats = filled_stats()
    assert stats.throughput_bps(100.0, 200.0) == 0.0


def test_throughput_invalid_window_raises():
    stats = filled_stats()
    with pytest.raises(ValueError):
        stats.throughput_bps(5.0, 5.0)


def test_rtt_percentiles_and_min():
    stats = filled_stats()
    assert stats.min_rtt() == pytest.approx(0.030)
    assert stats.rtt_percentile(0) == pytest.approx(0.030)
    assert stats.rtt_percentile(100) == pytest.approx(0.039)
    median = stats.rtt_percentile(50)
    assert 0.033 <= median <= 0.036


def test_rtt_percentile_interpolates_between_samples():
    # Ten samples 0.030..0.039: interior percentiles interpolate linearly
    # instead of snapping to the nearest sample.
    stats = filled_stats()
    assert stats.rtt_percentile(25) == pytest.approx(0.03225)
    assert stats.rtt_percentile(50) == pytest.approx(0.0345)
    assert stats.rtt_percentile(95) == pytest.approx(0.03855)


def test_rtt_percentile_respects_window():
    stats = filled_stats()
    assert stats.rtt_percentile(100, t0=0.0, t1=4.0) == pytest.approx(0.034)


def test_rtt_percentile_empty_window_raises():
    stats = filled_stats()
    with pytest.raises(ValueError):
        stats.rtt_percentile(50, t0=50.0, t1=60.0)
    with pytest.raises(ValueError):
        stats.rtt_percentile(120)


def test_loss_count_windows():
    stats = FlowStats()
    for t in (1.0, 2.0, 3.0):
        stats.record_loss(t)
    assert stats.loss_count() == 3
    assert stats.loss_count(1.5, 2.5) == 1


def test_delivery_accounting():
    stats = FlowStats()
    stats.record_delivery(1.0, 500)
    stats.record_delivery(2.0, 700)
    assert stats.delivered_bytes == 1200
    assert stats.first_delivery == 1.0
    assert stats.last_delivery == 2.0


def test_throughput_series_bins():
    stats = filled_stats()
    series = stats.throughput_series(bin_s=5.0, t0=0.0, t1=10.0)
    assert len(series) == 2
    centers = [c for c, _ in series]
    assert centers == [2.5, 7.5]
    total_mbits = sum(v * 5.0 for _, v in series)
    assert total_mbits == pytest.approx(10 * 1000 * 8 / 1e6)


def test_throughput_series_invalid_bin():
    with pytest.raises(ValueError):
        filled_stats().throughput_series(0.0, 0.0, 1.0)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),
            st.integers(min_value=1, max_value=1500),
        ),
        min_size=1,
        max_size=80,
    )
)
def test_property_windowed_throughput_sums_to_total(events):
    events.sort()
    stats = FlowStats()
    for t, nbytes in events:
        stats.record_ack(t, nbytes, rtt_s=0.03)
    total_bytes = sum(n for _, n in events)
    # One window covering everything recovers the exact byte count.
    assert stats.throughput_bps(-1.0, 101.0) * 102.0 / 8.0 == pytest.approx(
        total_bytes
    )
    assert stats.total_acked_bytes == total_bytes
