"""Unit tests for time-varying link dynamics (:mod:`repro.sim.dynamics`)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    DynamicsError,
    DynamicsLog,
    GilbertElliott,
    Link,
    LinkEvent,
    Packet,
    Simulator,
    TimelineDriver,
)


class TimedSink:
    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def receive(self, packet):
        self.arrivals.append((self.sim.now, packet))


def make_link(sim, bw=8e6, delay=0.0, buffer_bytes=float("inf"), **kw):
    return Link(sim, bandwidth_bps=bw, delay_s=delay, buffer_bytes=buffer_bytes, **kw)


# ----------------------------------------------------------------------
# LinkEvent
# ----------------------------------------------------------------------
def test_event_validation():
    with pytest.raises(ValueError):
        LinkEvent(-1.0, "bottleneck", "bandwidth", (1e6,))
    with pytest.raises(ValueError):
        LinkEvent(0.0, "bottleneck", "teleport")


def test_event_describe_covers_all_kinds():
    cases = [
        (LinkEvent(0.0, "l", "bandwidth", (10e6,)), "bandwidth -> 10 Mbps"),
        (LinkEvent(0.0, "l", "delay", (0.025,)), "delay -> 25 ms"),
        (LinkEvent(0.0, "l", "down"), "outage begins"),
        (LinkEvent(0.0, "l", "up"), "outage ends"),
        (LinkEvent(0.0, "l", "loss", (0.01,)), "loss rate -> 0.01"),
    ]
    for event, expected in cases:
        assert event.describe() == expected
    gilbert = LinkEvent(0.0, "l", "gilbert", (0.01, 0.25, 0.0, 0.5))
    assert "gilbert-elliott" in gilbert.describe()


# ----------------------------------------------------------------------
# Gilbert-Elliott burst loss
# ----------------------------------------------------------------------
def test_gilbert_validates_parameters():
    with pytest.raises(ValueError):
        GilbertElliott(p_enter_bad=1.5, p_exit_bad=0.5)
    with pytest.raises(ValueError):
        GilbertElliott(p_enter_bad=0.1, p_exit_bad=0.0)  # inescapable bad state


def test_gilbert_stationary_loss_rate():
    chain = GilbertElliott(p_enter_bad=0.01, p_exit_bad=0.24)
    assert chain.stationary_loss_rate() == pytest.approx(0.01 / 0.25)
    mixed = GilbertElliott(
        p_enter_bad=0.1, p_exit_bad=0.3, loss_good=0.01, loss_bad=0.5
    )
    assert mixed.stationary_loss_rate() == pytest.approx(
        0.25 * 0.5 + 0.75 * 0.01
    )


def test_gilbert_empirical_rate_and_burstiness():
    rng = random.Random(11)
    chain = GilbertElliott(p_enter_bad=0.02, p_exit_bad=0.2)
    n = 200_000
    losses = sum(chain.is_lost(rng) for _ in range(n))
    assert losses / n == pytest.approx(chain.stationary_loss_rate(), rel=0.1)
    # Correlated runs, not i.i.d.: mean burst length ~ 1 / p_exit_bad.
    assert chain.bad_entries > 0
    assert losses / chain.bad_entries == pytest.approx(1.0 / 0.2, rel=0.15)


def test_gilbert_deterministic_given_seed():
    def run(seed):
        rng = random.Random(seed)
        chain = GilbertElliott(0.05, 0.3, loss_bad=0.8)
        return [chain.is_lost(rng) for _ in range(500)]

    assert run(3) == run(3)
    assert run(3) != run(4)


# ----------------------------------------------------------------------
# TimelineDriver
# ----------------------------------------------------------------------
def test_driver_rejects_unknown_link():
    sim = Simulator()
    link = make_link(sim)
    with pytest.raises(DynamicsError, match="unknown link"):
        TimelineDriver(sim, {"bottleneck": link}, [LinkEvent(1.0, "uplink", "down")])


def test_driver_rejects_wrong_arity():
    sim = Simulator()
    link = make_link(sim)
    with pytest.raises(DynamicsError, match="expects 1 value"):
        TimelineDriver(
            sim, {"bottleneck": link}, [LinkEvent(1.0, "bottleneck", "bandwidth")]
        )


def test_driver_applies_events_as_clock_reaches_them():
    sim = Simulator()
    link = make_link(sim, bw=8e6)
    driver = TimelineDriver(
        sim,
        {"bottleneck": link},
        [
            LinkEvent(2.0, "bottleneck", "delay", (0.030,)),
            LinkEvent(1.0, "bottleneck", "bandwidth", (2e6,)),
            LinkEvent(3.0, "bottleneck", "loss", (0.1,)),
        ],
    )
    sim.run(until=2.5)
    assert link.bandwidth_bps == pytest.approx(2e6)
    assert link.delay_s == pytest.approx(0.030)
    assert link.loss_rate == 0.0  # the t=3 event has not fired yet
    sim.run(until=4.0)
    assert link.loss_rate == pytest.approx(0.1)
    # The applied log is the firing order, not the construction order.
    assert [event.time_s for event in driver.applied] == [1.0, 2.0, 3.0]


def test_outage_events_toggle_link():
    sim = Simulator()
    link = make_link(sim)
    TimelineDriver(
        sim,
        {"bottleneck": link},
        [LinkEvent(1.0, "bottleneck", "down"), LinkEvent(2.0, "bottleneck", "up")],
    )
    sim.run(until=1.5)
    assert link.is_down()
    sim.run(until=2.5)
    assert not link.is_down()


def test_loss_event_clears_stateful_model():
    sim = Simulator()
    link = make_link(sim)
    TimelineDriver(
        sim,
        {"bottleneck": link},
        [
            LinkEvent(1.0, "bottleneck", "gilbert", (0.01, 0.25, 0.0, 1.0)),
            LinkEvent(2.0, "bottleneck", "loss", (0.05,)),
        ],
    )
    sim.run(until=1.5)
    assert isinstance(link.loss_model, GilbertElliott)
    sim.run(until=2.5)
    assert link.loss_model is None
    assert link.loss_rate == pytest.approx(0.05)


def test_dynamics_log_filters_by_link():
    log = DynamicsLog(
        [
            LinkEvent(1.0, "a", "down"),
            LinkEvent(2.0, "b", "up"),
            LinkEvent(3.0, "a", "up"),
        ]
    )
    assert [event.time_s for event in log.for_link("a")] == [1.0, 3.0]
    assert log.for_link("c") == []


# ----------------------------------------------------------------------
# Conservation under arbitrary bandwidth timelines
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    changes=st.lists(
        st.tuples(
            st.floats(min_value=0.001, max_value=0.5),
            st.floats(min_value=1.0, max_value=100.0),
        ),
        max_size=6,
    ),
    sizes=st.lists(
        st.integers(min_value=40, max_value=1500), min_size=1, max_size=60
    ),
)
def test_property_conservation_under_bandwidth_timeline(changes, sizes):
    """offered == delivered + drops + losses under any bandwidth timeline.

    Runs with the invariant checker on (conftest), which re-verifies the
    accounting and the buffer bound at every event.
    """
    sim = Simulator()
    link = make_link(sim, bw=8e6, buffer_bytes=8000)
    sink = TimedSink(sim)
    events = [
        LinkEvent(at_s, "bottleneck", "bandwidth", (mbps * 1e6,))
        for at_s, mbps in changes
    ]
    TimelineDriver(sim, {"bottleneck": link}, events)

    accepted_bytes = []

    def offer(packet):
        if link.send(packet, sink):
            accepted_bytes.append(packet.size_bytes)

    for seq, size in enumerate(sizes):
        sim.schedule_fast_at(seq * 0.0007, offer, Packet(1, seq, size_bytes=size))
    sim.run()

    stats = link.stats
    assert stats.offered == len(sizes)
    assert stats.offered == stats.delivered + stats.tail_drops + stats.random_losses
    assert len(sink.arrivals) == stats.delivered
    assert sum(p.size_bytes for _, p in sink.arrivals) == sum(accepted_bytes)
    # FIFO survives every remap.
    seqs = [p.seq for _, p in sink.arrivals]
    assert seqs == sorted(seqs)
    assert stats.rate_changes == len(changes)
