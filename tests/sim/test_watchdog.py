"""Engine watchdog budgets and the clock-stall invariant tripwire."""

import pickle

import pytest

from repro.sim.engine import SimBudgetExceeded, Simulator, env_max_events
from repro.sim.invariants import InvariantChecker, InvariantError


def livelock(sim):
    """A zero-dt self-rescheduling bug: the clock never advances."""

    def spin():
        sim.schedule_fast(0.0, spin)

    sim.schedule_fast(0.0, spin)


def test_event_budget_trips_on_zero_dt_livelock():
    sim = Simulator(check_invariants=False)
    livelock(sim)
    with pytest.raises(SimBudgetExceeded) as info:
        sim.run(max_events=500)
    assert info.value.events_fired == 500
    assert info.value.max_events == 500
    assert sim.now == 0.0
    # The engine stayed consistent: the queue still holds the next spin.
    assert sim.pending() == 1


def test_budget_is_per_run_call():
    sim = Simulator(check_invariants=False)
    fired = []
    for i in range(6):
        sim.schedule_fast(0.1 * (i + 1), fired.append, i)
    sim.run(until=0.35, max_events=4)
    sim.run(until=0.65, max_events=4)  # fresh budget for the second call
    assert fired == [0, 1, 2, 3, 4, 5]


def test_budget_exactly_at_event_count_passes():
    sim = Simulator(check_invariants=False)
    for i in range(4):
        sim.schedule_fast(0.1 * (i + 1), lambda: None)
    sim.run(max_events=4)
    assert sim.events_fired == 4


def test_until_fast_forward_skipped_on_budget_trip():
    sim = Simulator(check_invariants=False)
    livelock(sim)
    with pytest.raises(SimBudgetExceeded):
        sim.run(until=10.0, max_events=100)
    assert sim.now == 0.0  # no fast-forward past the livelock


def test_wall_budget_trips_livelock():
    sim = Simulator(check_invariants=False)
    livelock(sim)
    with pytest.raises(SimBudgetExceeded) as info:
        sim.run(max_wall_s=0.05)
    assert info.value.max_wall_s == 0.05
    assert info.value.wall_s is not None and info.value.wall_s > 0.0


def test_env_budget_honored(monkeypatch):
    monkeypatch.setenv("REPRO_MAX_EVENTS", "200")
    assert env_max_events() == 200
    sim = Simulator(check_invariants=False)
    livelock(sim)
    with pytest.raises(SimBudgetExceeded) as info:
        sim.run()
    assert info.value.max_events == 200


@pytest.mark.parametrize("raw", ["", "0"])
def test_env_budget_unlimited_values(monkeypatch, raw):
    monkeypatch.setenv("REPRO_MAX_EVENTS", raw)
    assert env_max_events() is None


@pytest.mark.parametrize("raw", ["nope", "-3", "0.5"])
def test_env_budget_rejects_garbage(monkeypatch, raw):
    monkeypatch.setenv("REPRO_MAX_EVENTS", raw)
    with pytest.raises(ValueError):
        env_max_events()


def test_explicit_argument_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_MAX_EVENTS", "5")
    sim = Simulator(check_invariants=False)
    for i in range(20):
        sim.schedule_fast(0.1 * (i + 1), lambda: None)
    sim.run(max_events=100)  # env would have tripped at 5
    assert sim.events_fired == 20


def test_budgeted_run_matches_unbudgeted(monkeypatch):
    def drive(sim):
        fired = []
        for i in range(50):
            sim.schedule_fast(0.01 * (i + 1), fired.append, i)
        return fired

    a = Simulator(check_invariants=False)
    fired_a = drive(a)
    a.run()
    b = Simulator(check_invariants=False)
    fired_b = drive(b)
    b.run(max_events=10_000, max_wall_s=60.0)
    assert fired_a == fired_b
    assert a.now == b.now


def test_sim_budget_exceeded_pickles_intact():
    exc = SimBudgetExceeded(
        "boom", events_fired=7, max_events=5, wall_s=1.5, max_wall_s=1.0
    )
    clone = pickle.loads(pickle.dumps(exc))
    assert isinstance(clone, SimBudgetExceeded)
    assert str(clone) == "boom"
    assert clone.events_fired == 7
    assert clone.max_events == 5
    assert clone.wall_s == 1.5
    assert clone.max_wall_s == 1.0


def test_invariant_stall_detector_names_the_cause():
    sim = Simulator(check_invariants=False)
    sim.invariants = InvariantChecker(sim, max_stall_events=32)
    livelock(sim)
    with pytest.raises(InvariantError, match="stalled"):
        sim.run()
    assert sim.events_fired <= 33


def test_invariant_stall_detector_allows_same_time_bursts():
    sim = Simulator(check_invariants=False)
    sim.invariants = InvariantChecker(sim, max_stall_events=32)
    for _ in range(20):  # 20 simultaneous arrivals: under the threshold
        sim.schedule_fast_at(1.0, lambda: None)
    sim.schedule_fast_at(2.0, lambda: None)
    sim.run()
    assert sim.events_fired == 21


def test_invariant_stall_threshold_validated():
    sim = Simulator(check_invariants=False)
    with pytest.raises(ValueError):
        InvariantChecker(sim, max_stall_events=0)
