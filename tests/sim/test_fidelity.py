"""Hybrid-fidelity unit and integration tests.

Covers the :mod:`repro.sim.fidelity` configuration surface, the
all-or-nothing per-link eligibility rule of ``activate_fastforward``,
the ``sim.fastforward`` tracepoints, the virtual-event accounting, and
the numpy-vs-pure-Python burst planner parity.  The statistical
closeness of hybrid results to packet-exact on paper scenarios is pinned
separately in ``tests/test_fidelity_acceptance.py``.
"""

from __future__ import annotations

import pytest

from repro.harness import EMULAB_DEFAULT, FlowSpec, run_flows
from repro.sim import EXACT, HYBRID, Fidelity, activate_fastforward, resolve_fidelity
from repro.sim.engine import Simulator
from repro.sim.flow import Flow, Path
from repro.sim.link import Link


# ----------------------------------------------------------------------
# Configuration surface
# ----------------------------------------------------------------------
def test_fidelity_mode_validation():
    with pytest.raises(ValueError):
        Fidelity(mode="fluid")
    with pytest.raises(ValueError):
        Fidelity(mode="hybrid", burst_packets=0)
    with pytest.raises(ValueError):
        Fidelity(mode="hybrid", burst_horizon_frac=0.0)
    with pytest.raises(ValueError):
        Fidelity(mode="hybrid", burst_horizon_frac=1.5)


def test_resolve_fidelity_passthrough_and_strings():
    assert resolve_fidelity(EXACT) is EXACT
    assert resolve_fidelity(HYBRID) is HYBRID
    assert resolve_fidelity("exact") is EXACT
    assert resolve_fidelity("hybrid") is HYBRID
    with pytest.raises(ValueError):
        resolve_fidelity("approximate")


def test_resolve_fidelity_env(monkeypatch):
    monkeypatch.delenv("REPRO_FIDELITY", raising=False)
    assert resolve_fidelity(None) is EXACT
    monkeypatch.setenv("REPRO_FIDELITY", "hybrid")
    assert resolve_fidelity(None) is HYBRID
    monkeypatch.setenv("REPRO_FIDELITY", "exact")
    assert resolve_fidelity(None) is EXACT


def test_fidelity_cache_keys_distinguish_every_knob():
    keys = [
        EXACT.key(),
        HYBRID.key(),
        Fidelity(mode="hybrid", burst_packets=64).key(),
        Fidelity(mode="hybrid", burst_horizon_frac=0.5).key(),
        Fidelity(mode="hybrid", use_numpy=False).key(),
    ]
    as_tuples = {tuple(sorted(k.items())) for k in keys}
    assert len(as_tuples) == len(keys)


# ----------------------------------------------------------------------
# Eligibility
# ----------------------------------------------------------------------
class _NullSender:
    """Minimal SenderProtocol stand-in for wiring tests."""

    def bind(self, sim, flow):
        self.flow = flow

    def start(self):
        pass

    def handle_ack_packet(self, ack):
        pass

    def on_data_available(self):
        pass

    def stop(self):
        pass


def _wire(sim, n_flows: int, sizes=None):
    fwd = Link(sim, bandwidth_bps=10e6, delay_s=0.01, buffer_bytes=50_000)
    rev = Link(sim, bandwidth_bps=10e6, delay_s=0.01, buffer_bytes=50_000)
    flows = []
    for i in range(n_flows):
        size = sizes[i] if sizes else None
        flows.append(
            Flow(
                sim,
                _NullSender(),
                Path([fwd]),
                Path([rev]),
                flow_id=i + 1,
                size_bytes=size,
            )
        )
    return flows


def test_activate_noop_in_exact_mode():
    sim = Simulator(check_invariants=False)
    flows = _wire(sim, 2)
    assert activate_fastforward(sim, flows) == 0
    assert not any(f.ff_collapse for f in flows)


def test_activate_enables_all_unbounded_flows():
    sim = Simulator(check_invariants=False, fidelity=HYBRID)
    flows = _wire(sim, 3)
    assert activate_fastforward(sim, flows) == 3
    assert all(f.ff_collapse for f in flows)


def test_one_bounded_flow_disables_the_whole_shared_link():
    # A packet-exact flow sharing a link with collapsed traffic would
    # see the transmitter pre-claimed at virtual future times, so one
    # ineligible flow must veto every flow on its links.
    sim = Simulator(check_invariants=False, fidelity=HYBRID)
    flows = _wire(sim, 3, sizes=[None, 100_000, None])
    assert activate_fastforward(sim, flows) == 0
    assert not any(f.ff_collapse for f in flows)


def test_delivery_callback_disqualifies():
    sim = Simulator(check_invariants=False, fidelity=HYBRID)
    fwd = Link(sim, bandwidth_bps=10e6, delay_s=0.01, buffer_bytes=50_000)
    rev = Link(sim, bandwidth_bps=10e6, delay_s=0.01, buffer_bytes=50_000)
    flow = Flow(
        sim,
        _NullSender(),
        Path([fwd]),
        Path([rev]),
        on_delivery=lambda now, n: None,
    )
    assert activate_fastforward(sim, [flow]) == 0
    assert not flow.ff_collapse


def test_multihop_path_disqualifies():
    sim = Simulator(check_invariants=False, fidelity=HYBRID)
    a = Link(sim, bandwidth_bps=10e6, delay_s=0.01, buffer_bytes=50_000)
    b = Link(sim, bandwidth_bps=10e6, delay_s=0.01, buffer_bytes=50_000)
    rev = Link(sim, bandwidth_bps=10e6, delay_s=0.01, buffer_bytes=50_000)
    flow = Flow(sim, _NullSender(), Path([a, b]), Path([rev]))
    assert activate_fastforward(sim, [flow]) == 0


def test_dynamic_link_disqualifies():
    # A DynamicLink's explicit per-packet queue cannot be advanced in
    # closed form: can_fastforward is False and the flow stays exact.
    from repro.sim import DynamicLink, TailDropDiscipline

    sim = Simulator(check_invariants=False, fidelity=HYBRID)
    fwd = DynamicLink(
        sim, rate_bps=10e6, delay_s=0.01, discipline=TailDropDiscipline(50_000)
    )
    rev = Link(sim, bandwidth_bps=10e6, delay_s=0.01, buffer_bytes=50_000)
    flow = Flow(sim, _NullSender(), Path([fwd]), Path([rev]))
    assert activate_fastforward(sim, [flow]) == 0
    assert not flow.ff_collapse


# ----------------------------------------------------------------------
# End-to-end behaviour
# ----------------------------------------------------------------------
SPECS = [FlowSpec("cubic"), FlowSpec("proteus-s", start_time=1.0)]


def _run(fidelity, tracer=None, duration_s=4.0):
    return run_flows(
        SPECS,
        EMULAB_DEFAULT,
        duration_s=duration_s,
        seed=7,
        fidelity=fidelity,
        tracer=tracer,
    )


def test_hybrid_absorbs_events_virtually():
    exact = _run(EXACT)
    hybrid = _run(HYBRID)
    assert exact.dumbbell.sim.events_virtual == 0
    sim = hybrid.dumbbell.sim
    assert sim.events_virtual > 0
    # Fewer real dispatches, but the virtual ledger keeps the effective
    # count in the same regime as the exact run (hybrid may legitimately
    # send slightly fewer packets near MI edges).
    assert sim.events_fired < exact.dumbbell.sim.events_fired
    effective = sim.events_fired + sim.events_virtual
    assert effective > 0.8 * exact.dumbbell.sim.events_fired


def test_hybrid_throughput_close_to_exact():
    # Individual flow shares on one seed are chaotic (exact runs with
    # different seeds diverge just as much); the stable single-run
    # signals are the aggregate throughput and the flow ordering.  The
    # ensemble-mean deltas are pinned in tests/test_fidelity_acceptance.
    exact = _run(EXACT, duration_s=8.0)
    hybrid = _run(HYBRID, duration_s=8.0)
    e_total = exact.throughput_mbps(0) + exact.throughput_mbps(1)
    h_total = hybrid.throughput_mbps(0) + hybrid.throughput_mbps(1)
    assert h_total == pytest.approx(e_total, rel=0.05), (
        f"aggregate: hybrid {h_total:.2f} vs exact {e_total:.2f} Mbps"
    )
    # The primary outcompetes the scavenger in both modes.
    assert exact.throughput_mbps(0) > exact.throughput_mbps(1)
    assert hybrid.throughput_mbps(0) > hybrid.throughput_mbps(1)


def test_hybrid_emits_fastforward_tracepoints():
    from repro.obs import CollectingTracer

    tracer = CollectingTracer()
    _run(HYBRID, tracer=tracer, duration_s=2.0)
    ff = [ev for ev in tracer.events if ev.kind == "sim.fastforward"]
    reasons = {ev.fields["reason"] for ev in ff}
    assert "collapse" in reasons
    # With a tracer attached the burst planner stays on the per-packet
    # reference path, but the burst *dispatch* tracepoint still fires.
    assert "burst" in reasons


def test_exact_mode_emits_no_fastforward_tracepoints():
    from repro.obs import CollectingTracer

    tracer = CollectingTracer()
    _run(EXACT, tracer=tracer, duration_s=2.0)
    assert not any(ev.kind == "sim.fastforward" for ev in tracer.events)


def test_hybrid_deterministic_per_fidelity():
    a = _run(HYBRID)
    b = _run(HYBRID)
    for sa, sb in zip(a.stats, b.stats):
        assert sa.delivered_bytes == sb.delivered_bytes
        assert list(sa.rtts) == list(sb.rtts)
        assert list(sa.loss_times) == list(sb.loss_times)


def test_numpy_and_python_burst_planners_agree():
    # burst_packets=64 clears MIN_NUMPY_BURST so the vectorized planner
    # actually engages; the pure-Python path is the reference.
    pytest.importorskip("numpy")
    from repro.sim import flowstate

    assert flowstate.numpy_available()
    np_fid = Fidelity(mode="hybrid", burst_packets=64, use_numpy=True)
    py_fid = Fidelity(mode="hybrid", burst_packets=64, use_numpy=False)
    with_np = _run(np_fid)
    with_py = _run(py_fid)
    for sa, sb in zip(with_np.stats, with_py.stats):
        assert sa.packets_sent == pytest.approx(sb.packets_sent, rel=0.01)
        assert sa.delivered_bytes == pytest.approx(sb.delivered_bytes, rel=0.01)


def test_fidelity_is_part_of_the_cache_key(tmp_path):
    from repro.harness.cache import enable_cache, reset_cache_state

    try:
        cache = enable_cache(tmp_path)
        run_flows(SPECS, EMULAB_DEFAULT, duration_s=2.0, seed=3, fidelity=EXACT)
        assert cache.stats()["misses"] == 1
        run_flows(SPECS, EMULAB_DEFAULT, duration_s=2.0, seed=3, fidelity=HYBRID)
        # The hybrid run must not hit the exact run's record.
        assert cache.stats()["misses"] == 2
        run_flows(SPECS, EMULAB_DEFAULT, duration_s=2.0, seed=3, fidelity=HYBRID)
        assert cache.stats()["hits"] == 1
    finally:
        reset_cache_state()


# ----------------------------------------------------------------------
# Conservative-veto property: vetoed scenarios are byte-identical
# ----------------------------------------------------------------------
def test_hybrid_is_byte_identical_when_topology_vetoes():
    """Multi-hop and DynamicLink paths veto fast-forward, so a hybrid
    run of any such scenario must be *byte-identical* to the exact run
    — not merely close — with zero virtual events."""
    from repro.devtools import stats_digest
    from repro.harness import TOPOLOGIES

    for name in ("parking-lot", "parking-lot-codel", "shared-core",
                 "dumbbell-codel", "dumbbell-red"):
        spec = TOPOLOGIES[name]()
        exact = run_flows(
            SPECS, EMULAB_DEFAULT, duration_s=3.0, seed=5,
            fidelity=EXACT, topology=spec,
        )
        hybrid = run_flows(
            SPECS, EMULAB_DEFAULT, duration_s=3.0, seed=5,
            fidelity=HYBRID, topology=spec,
        )
        assert stats_digest(exact.stats) == stats_digest(hybrid.stats), name
        # The veto held: the hybrid engine never fast-forwarded.
        assert hybrid.dumbbell.sim.events_virtual == 0, name


def test_hybrid_is_byte_identical_under_dynamic_link_timeline():
    """A timeline-scripted run over a DynamicLink bottleneck (dumbbell
    with an AQM) exercises the other veto axis: link dynamics."""
    from repro.devtools import stats_digest
    from repro.harness import BandwidthStep, Timeline, TOPOLOGIES

    timeline = Timeline((BandwidthStep(at_s=1.5, bandwidth_mbps=20.0),))
    spec = TOPOLOGIES["dumbbell-codel"]()
    runs = [
        run_flows(
            SPECS, EMULAB_DEFAULT, duration_s=3.0, seed=9,
            fidelity=fid, topology=spec, timeline=timeline,
        )
        for fid in (EXACT, HYBRID)
    ]
    assert stats_digest(runs[0].stats) == stats_digest(runs[1].stats)
    assert runs[1].dumbbell.sim.events_virtual == 0
