"""Integration tests for flows, receivers, ACK echo, and completion."""

import pytest

from repro.protocols import FixedRateSender, make_sender
from repro.sim import Dumbbell, Simulator, make_rng, mbps


def build(bandwidth_mbps=10.0, rtt_ms=40.0, buffer_kb=500.0, seed=1):
    sim = Simulator()
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=mbps(bandwidth_mbps),
        rtt_s=rtt_ms / 1e3,
        buffer_bytes=buffer_kb * 1e3,
        rng=make_rng(seed),
    )
    return sim, dumbbell


def test_fixed_rate_flow_delivers_at_its_rate():
    sim, dumbbell = build()
    sender = FixedRateSender(rate_bps=mbps(2.0))
    flow = dumbbell.add_flow(sender)
    sim.run(until=10.0)
    achieved = flow.stats.throughput_bps(2.0, 10.0) / 1e6
    assert achieved == pytest.approx(2.0, rel=0.05)


def test_rtt_measures_base_rtt_when_uncongested():
    sim, dumbbell = build(rtt_ms=40.0)
    sender = FixedRateSender(rate_bps=mbps(1.0))
    flow = dumbbell.add_flow(sender)
    sim.run(until=5.0)
    base = flow.base_rtt()
    assert base == pytest.approx(0.040)
    # Measured RTT = base + serialization times (small at 1 Mbps).
    assert flow.stats.min_rtt() == pytest.approx(base, abs=0.005)
    assert flow.stats.min_rtt() >= base


def test_finite_flow_completes_and_fires_callback():
    sim, dumbbell = build()
    done = []
    sender = FixedRateSender(rate_bps=mbps(8.0))
    flow = dumbbell.add_flow(
        sender,
        size_bytes=100_000,
        on_complete=lambda f, t: done.append(t),
    )
    sim.run(until=20.0)
    assert flow.completed
    assert len(done) == 1
    assert flow.stats.delivered_bytes >= 100_000
    # Roughly: 100 KB at 8 Mbps = 0.1 s + RTT overheads.
    assert done[0] == pytest.approx(0.1 + 0.04, abs=0.1)


def test_flow_start_time_is_respected():
    sim, dumbbell = build()
    sender = FixedRateSender(rate_bps=mbps(1.0))
    flow = dumbbell.add_flow(sender, start_time=3.0)
    sim.run(until=5.0)
    assert flow.stats.ack_times[0] > 3.0
    assert flow.stats.throughput_bps(0.0, 3.0) == 0.0


def test_on_delivery_callback_sees_all_bytes():
    sim, dumbbell = build()
    got = []
    sender = FixedRateSender(rate_bps=mbps(4.0))
    flow = dumbbell.add_flow(
        sender, size_bytes=50_000, on_delivery=lambda now, n: got.append(n)
    )
    sim.run(until=10.0)
    assert sum(got) == flow.stats.delivered_bytes
    assert flow.stats.delivered_bytes >= 50_000


def test_add_bytes_meters_chunked_data():
    sim, dumbbell = build()
    sender = FixedRateSender(rate_bps=mbps(8.0))
    flow = dumbbell.add_flow(sender, chunked=True)
    flow.add_bytes(10_000)
    sim.run(until=2.0)
    first_batch = flow.stats.delivered_bytes
    assert first_batch >= 10_000
    flow.add_bytes(20_000)
    sim.run(until=4.0)
    assert flow.stats.delivered_bytes >= 30_000
    assert not flow.completed  # chunked flows never auto-complete


def test_add_bytes_rejects_unbounded_and_nonpositive():
    sim, dumbbell = build()
    bounded = dumbbell.add_flow(FixedRateSender(rate_bps=mbps(1.0)), size_bytes=1000)
    unbounded = dumbbell.add_flow(FixedRateSender(rate_bps=mbps(1.0)))
    with pytest.raises(ValueError):
        bounded.add_bytes(0)
    with pytest.raises(RuntimeError):
        unbounded.add_bytes(100)


def test_two_flows_share_the_bottleneck():
    sim, dumbbell = build(bandwidth_mbps=10.0)
    flows = [
        dumbbell.add_flow(FixedRateSender(rate_bps=mbps(8.0))) for _ in range(2)
    ]
    sim.run(until=10.0)
    totals = [f.stats.throughput_bps(5.0, 10.0) / 1e6 for f in flows]
    # Both offered 8 Mbps into a 10 Mbps link: each delivers ~5.
    assert sum(totals) == pytest.approx(10.0, rel=0.05)
    assert totals[0] == pytest.approx(totals[1], rel=0.2)


def test_losses_are_detected_via_ack_gaps():
    sim, dumbbell = build(bandwidth_mbps=5.0, buffer_kb=10.0)
    sender = FixedRateSender(rate_bps=mbps(8.0))  # oversubscribe: tail drops
    flow = dumbbell.add_flow(sender)
    sim.run(until=5.0)
    assert dumbbell.bottleneck.stats.tail_drops > 0
    assert flow.stats.loss_count() > 0


def test_extra_delay_adds_rtt():
    sim, dumbbell = build(rtt_ms=40.0)
    near = dumbbell.add_flow(FixedRateSender(rate_bps=mbps(0.5)))
    far = dumbbell.add_flow(
        FixedRateSender(rate_bps=mbps(0.5)), extra_delay_s=0.060
    )
    sim.run(until=5.0)
    assert near.stats.min_rtt() == pytest.approx(0.040, abs=0.01)
    assert far.stats.min_rtt() == pytest.approx(0.100, abs=0.01)


def test_sender_factory_rejects_unknown_protocol():
    with pytest.raises(ValueError, match="unknown protocol"):
        make_sender("not-a-protocol")
