"""Unit tests for latency-noise models."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    CompositeNoise,
    GaussianJitter,
    NoNoise,
    SpikeNoise,
    wifi_noise,
)


def test_no_noise_is_zero():
    rng = random.Random(0)
    model = NoNoise()
    assert all(model.sample(t, rng) == 0.0 for t in (0.0, 1.0, 100.0))


def test_gaussian_jitter_nonnegative_and_spread():
    rng = random.Random(1)
    model = GaussianJitter(std_s=0.002)
    samples = [model.sample(0.0, rng) for _ in range(2000)]
    assert all(s >= 0.0 for s in samples)
    assert max(samples) > 0.002  # spread exists
    mean = sum(samples) / len(samples)
    assert 0.0 < mean < 0.004


def test_gaussian_jitter_rejects_negative_std():
    with pytest.raises(ValueError):
        GaussianJitter(std_s=-1.0)


def test_spike_noise_produces_occasional_spikes():
    rng = random.Random(2)
    model = SpikeNoise(rate_hz=5.0, magnitude_s=0.030, duration_s=0.020)
    t = 0.0
    spiked = 0
    quiet = 0
    while t < 20.0:
        s = model.sample(t, rng)
        if s > 0.010:
            spiked += 1
        elif s == 0.0:
            quiet += 1
        t += 0.005
    assert spiked > 0
    assert quiet > spiked  # spikes are the exception, not the rule


def _find_spike_window(model, rng, t, step=0.001, limit=200.0):
    """Advance time until a sample lands inside a spike window."""
    while t < limit:
        s = model.sample(t, rng)
        if s > 0.0:
            return t, s
        t += step
    raise AssertionError("no spike window found")


def test_spike_noise_magnitude_shared_within_window():
    # Regression: the spike magnitude is drawn once per window, so every
    # packet held by the same spike sees the same extra delay (the whole
    # burst shifts together, as a MAC stall does).
    rng = random.Random(6)
    model = SpikeNoise(rate_hz=2.0, magnitude_s=0.030, duration_s=0.020)
    t, first = _find_spike_window(model, rng, 0.0)
    # Probes strictly inside the same window return the same magnitude.
    assert all(
        model.sample(t + dt, rng) == first for dt in (0.002, 0.005, 0.009)
    )
    # The scale is drawn from [0.5, 1.0] x magnitude.
    assert 0.015 <= first <= 0.030
    # A later window draws a fresh magnitude.
    _, second = _find_spike_window(model, rng, t + model.duration_s + 0.001)
    assert second != first


def test_spike_noise_zero_rate_never_spikes():
    rng = random.Random(3)
    model = SpikeNoise(rate_hz=0.0)
    assert all(model.sample(t, rng) == 0.0 for t in (0.0, 5.0, 50.0))


def test_composite_sums_components():
    rng = random.Random(4)

    class Constant:
        def __init__(self, v):
            self.v = v

        def sample(self, now, rng):
            return self.v

    model = CompositeNoise(Constant(0.001), Constant(0.002))
    assert model.sample(0.0, rng) == pytest.approx(0.003)


def test_wifi_noise_severity_scales_magnitude():
    rng_low = random.Random(5)
    rng_high = random.Random(5)
    low = wifi_noise(0.2)
    high = wifi_noise(2.0)
    low_total = sum(low.sample(t * 0.01, rng_low) for t in range(5000))
    high_total = sum(high.sample(t * 0.01, rng_high) for t in range(5000))
    assert high_total > low_total


def test_wifi_noise_rejects_negative_severity():
    with pytest.raises(ValueError):
        wifi_noise(-0.5)


@settings(max_examples=50, deadline=None)
@given(
    severity=st.floats(min_value=0.0, max_value=5.0),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_wifi_noise_always_nonnegative(severity, seed):
    rng = random.Random(seed)
    model = wifi_noise(severity)
    assert all(model.sample(t * 0.02, rng) >= 0.0 for t in range(200))
