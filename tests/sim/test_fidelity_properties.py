"""Property tests: hybrid fast-forward under randomized link timelines.

The hybrid mode's correctness argument is structural — collapsed legs
reproduce the packet-exact arithmetic, and every dynamic hazard (loss,
outage, noise) forces the reference path — so the right test is not a
handful of hand-picked scenarios but the conservation invariants under
*arbitrary* timelines.  Hypothesis drives random bandwidth steps, i.i.d.
and Gilbert-Elliott loss, and outages through a two-flow dumbbell in
both fidelity modes with the runtime :class:`InvariantChecker` armed;
any conservation, clock, queue, or RTT violation raises mid-run.
"""

from __future__ import annotations

import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness import (
    EMULAB_DEFAULT,
    BandwidthStep,
    FlowSpec,
    GilbertLoss,
    LossStep,
    Outage,
    Timeline,
    run_flows,
)
from repro.sim import EXACT, HYBRID
from repro.sim.packet import MTU_BYTES

SPECS = [FlowSpec("cubic"), FlowSpec("proteus-s", start_time=0.5)]
DURATION_S = 4.0

# Step times land strictly inside the run so every mutation is exercised.
_times = st.floats(min_value=0.3, max_value=3.5, allow_nan=False)

_bandwidth_steps = st.builds(
    BandwidthStep,
    at_s=_times,
    bandwidth_mbps=st.floats(min_value=4.0, max_value=40.0, allow_nan=False),
)
_loss_steps = st.builds(
    LossStep,
    at_s=_times,
    loss_rate=st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
)
_outages = st.builds(
    lambda start, span: Outage(start_s=start, end_s=start + span),
    start=_times,
    span=st.floats(min_value=0.05, max_value=0.4, allow_nan=False),
)
_gilbert_steps = st.builds(
    GilbertLoss,
    at_s=_times,
    p_enter_bad=st.floats(min_value=0.001, max_value=0.05, allow_nan=False),
    p_exit_bad=st.floats(min_value=0.1, max_value=0.9, allow_nan=False),
)

_timelines = st.lists(
    st.one_of(_bandwidth_steps, _loss_steps, _outages, _gilbert_steps),
    min_size=0,
    max_size=4,
).map(lambda steps: Timeline(tuple(steps), label="property"))


def _run(fidelity, timeline, seed):
    # Arm the runtime checker regardless of the suite's environment:
    # clock monotonicity + per-sweep link conservation raise mid-run.
    old = os.environ.get("REPRO_CHECK_INVARIANTS")
    os.environ["REPRO_CHECK_INVARIANTS"] = "1"
    try:
        return run_flows(
            SPECS,
            EMULAB_DEFAULT,
            duration_s=DURATION_S,
            seed=seed,
            timeline=timeline,
            fidelity=fidelity,
        )
    finally:
        if old is None:
            del os.environ["REPRO_CHECK_INVARIANTS"]
        else:
            os.environ["REPRO_CHECK_INVARIANTS"] = old


def _assert_conservation(result):
    for link in (result.dumbbell.bottleneck, result.dumbbell.reverse):
        stats = link.stats
        accounted = (
            stats.delivered
            + stats.tail_drops
            + stats.random_losses
            + getattr(stats, "outage_drops", 0)
            + link.queued_packets()
        )
        assert stats.offered == accounted, (
            f"{link.name}: offered={stats.offered} accounted={accounted}"
        )
    for flow_stats in result.stats:
        assert flow_stats.delivered_bytes <= flow_stats.packets_sent * MTU_BYTES


@settings(max_examples=12, deadline=None)
@given(timeline=_timelines, seed=st.integers(min_value=0, max_value=2**16))
def test_hybrid_conserves_packets_under_random_timelines(timeline, seed):
    hybrid = _run(HYBRID, timeline, seed)
    _assert_conservation(hybrid)
    sim = hybrid.dumbbell.sim
    assert sim.events_virtual >= 0
    assert sim.events_fired > 0
    # The virtual ledger only ever counts absorbed per-packet events; it
    # can never exceed what a packet-exact run would have dispatched for
    # the same packet count (3 events per collapsed round trip).
    total_packets = sum(s.packets_sent for s in hybrid.stats)
    assert sim.events_virtual <= 3 * total_packets


@settings(max_examples=8, deadline=None)
@given(timeline=_timelines, seed=st.integers(min_value=0, max_value=2**16))
def test_exact_mode_never_goes_virtual_under_random_timelines(timeline, seed):
    exact = _run(EXACT, timeline, seed)
    _assert_conservation(exact)
    assert exact.dumbbell.sim.events_virtual == 0


@settings(max_examples=6, deadline=None)
@given(timeline=_timelines, seed=st.integers(min_value=0, max_value=2**16))
def test_hybrid_is_deterministic_under_random_timelines(timeline, seed):
    a = _run(HYBRID, timeline, seed)
    b = _run(HYBRID, timeline, seed)
    for sa, sb in zip(a.stats, b.stats):
        assert sa.delivered_bytes == sb.delivered_bytes
        assert sa.packets_sent == sb.packets_sent
        assert list(sa.rtts) == list(sb.rtts)
        assert list(sa.loss_times) == list(sb.loss_times)
