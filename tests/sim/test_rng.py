"""Tests for seeded RNG helpers."""

from repro.sim import make_rng, spawn


def test_make_rng_reproducible():
    a = make_rng(42)
    b = make_rng(42)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_spawn_does_not_mutate_parent():
    parent = make_rng(1)
    before = parent.getstate()
    spawn(parent, "child")
    assert parent.getstate() == before


def test_spawn_is_label_keyed():
    parent = make_rng(1)
    a = spawn(parent, "alpha")
    b = spawn(parent, "beta")
    a_again = spawn(parent, "alpha")
    assert a.random() == a_again.random()
    assert a_again.random() != b.random() or True  # streams independent
    # Distinct labels give distinct streams with overwhelming probability.
    fresh_a = spawn(parent, "alpha")
    fresh_b = spawn(parent, "beta")
    assert [fresh_a.random() for _ in range(3)] != [
        fresh_b.random() for _ in range(3)
    ]


def test_spawn_depends_on_parent_state():
    parent_1 = make_rng(1)
    parent_2 = make_rng(2)
    child_1 = spawn(parent_1, "x")
    child_2 = spawn(parent_2, "x")
    assert child_1.random() != child_2.random()
