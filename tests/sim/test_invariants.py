"""Runtime invariant layer: real bugs must fail loudly, healthy runs must not.

The whole tier-1 suite runs with ``REPRO_CHECK_INVARIANTS=1`` (set in
``tests/conftest.py``); these tests exercise the checker itself —
including a deliberately-broken link that mis-accounts packets, which
the conservation sweep must catch mid-run.
"""

import pytest

from repro.protocols import FixedRateSender
from repro.sim import (
    Dumbbell,
    InvariantChecker,
    InvariantError,
    Link,
    Packet,
    Simulator,
    make_rng,
    mbps,
)


class _Sink:
    def receive(self, packet):
        pass


class _BrokenLink(Link):
    """Silently discards every third packet without counting the drop."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._n = 0

    def send(self, packet, dst):
        self._n += 1
        if self._n % 3 == 0:
            self.stats.offered += 1  # offered but never delivered/dropped
            return True
        return super().send(packet, dst)


def _feed(sim, link, sink, count=20, spacing_s=0.001):
    for i in range(count):
        sim.schedule_at(
            spacing_s * i, link.send, Packet(flow_id=1, seq=i, size_bytes=1000), sink
        )


def test_broken_link_conservation_caught_during_run():
    sim = Simulator(check_invariants=True)
    link = _BrokenLink(sim, bandwidth_bps=8e6, delay_s=0.010, name="broken")
    _feed(sim, link, _Sink())
    with pytest.raises(InvariantError, match="packet conservation.*'broken'"):
        sim.run()


def test_healthy_link_passes_final_sweep():
    sim = Simulator(check_invariants=True)
    link = Link(sim, bandwidth_bps=8e6, delay_s=0.010, buffer_bytes=3000)
    # Packets arrive 5x faster than the 1 ms serialization time, so the
    # 3-packet buffer overflows and tail drops must be accounted.
    _feed(sim, link, _Sink(), spacing_s=0.0002)
    sim.run()
    assert sim.invariants.sweeps > 0
    assert link.stats.tail_drops > 0  # drops happened and were accounted


def test_negative_backlog_caught():
    sim = Simulator(check_invariants=True)

    class _BadQueue:
        name = "bad-queue"
        stats = Link(Simulator(check_invariants=False), 1e6, 0.0).stats

        def backlog_bytes(self):
            return -42.0

        def queued_packets(self):
            return 0

    sim.invariants.register_link(_BadQueue())
    with pytest.raises(InvariantError, match="negative or non-finite backlog"):
        sim.invariants.check_now()


def test_clock_regression_caught():
    sim = Simulator(check_invariants=True)
    checker = sim.invariants
    checker.after_event(5.0)
    with pytest.raises(InvariantError, match="clock moved backwards"):
        checker.after_event(4.0)


class _StubFlow:
    flow_id = 7
    start_time = 0.0

    def __init__(self, rtts):
        class _Stats:
            pass

        self.stats = _Stats()
        self.stats.rtts = rtts

    def base_rtt(self):
        return 0.030


def test_rtt_below_propagation_floor_caught():
    sim = Simulator(check_invariants=True)
    sim.now = 10.0
    sim.invariants.register_flow(_StubFlow([0.031, 0.010]))
    with pytest.raises(InvariantError, match="RTT sample 0.01"):
        sim.invariants.check_now()


def test_rtt_above_flow_lifetime_caught():
    sim = Simulator(check_invariants=True)
    sim.now = 1.0
    sim.invariants.register_flow(_StubFlow([0.031, 2.0]))
    with pytest.raises(InvariantError, match="RTT sample 2.0"):
        sim.invariants.check_now()


def test_rtt_audit_is_incremental():
    sim = Simulator(check_invariants=True)
    sim.now = 10.0
    rtts = [0.030, 0.040]
    flow = _StubFlow(rtts)
    sim.invariants.register_flow(flow)
    sim.invariants.check_now()
    rtts.append(0.035)
    sim.invariants.check_now()
    assert sim.invariants._rtt_checked[id(flow)] == 3


def test_periodic_sweep_interval():
    sim = Simulator(check_invariants=True)
    sim.invariants.sweep_every_events = 4
    for i in range(10):
        sim.schedule_at(0.001 * i, lambda: None)
    sim.run()
    # 10 events / 4 per sweep = 2 periodic sweeps + 1 final sweep.
    assert sim.invariants.sweeps == 3


def test_invariants_enabled_in_full_scenario():
    sim = Simulator(check_invariants=True)
    dumbbell = Dumbbell(sim, mbps(10.0), 0.020, 200e3, rng=make_rng(1))
    dumbbell.add_flow(FixedRateSender(rate_bps=mbps(12.0)))  # overdriven
    sim.run(until=3.0)
    assert sim.invariants.sweeps > 0
    assert dumbbell.bottleneck.stats.tail_drops > 0


def test_env_var_gate(monkeypatch):
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
    assert Simulator().invariants is not None
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "0")
    assert Simulator().invariants is None
    monkeypatch.delenv("REPRO_CHECK_INVARIANTS")
    assert Simulator().invariants is None
    # Explicit argument beats the environment.
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
    assert Simulator(check_invariants=False).invariants is None
    monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "0")
    assert isinstance(Simulator(check_invariants=True).invariants, InvariantChecker)
