"""Unit tests for topology building and multi-hop paths."""

import pytest

from repro.protocols import CubicSender, FixedRateSender, make_sender
from repro.sim import (
    CoDelDiscipline,
    Dumbbell,
    DynamicLink,
    Link,
    MultiDumbbell,
    Packet,
    ParkingLot,
    Path,
    Simulator,
    Topology,
    TopologyError,
    make_rng,
    mbps,
)


def test_mbps_helper():
    assert mbps(50.0) == 50e6


def test_dumbbell_bdp():
    sim = Simulator()
    dumbbell = Dumbbell(sim, mbps(50.0), 0.030, 375e3, rng=make_rng(1))
    assert dumbbell.bdp_bytes() == pytest.approx(50e6 * 0.030 / 8)


def test_dumbbell_reverse_path_never_bottlenecks():
    sim = Simulator()
    dumbbell = Dumbbell(sim, mbps(10.0), 0.020, 200e3, rng=make_rng(1))
    flow = dumbbell.add_flow(FixedRateSender(rate_bps=mbps(9.0)))
    sim.run(until=5.0)
    # ACK path is 40x the bottleneck: no reverse-direction drops.
    assert dumbbell.reverse.stats.tail_drops == 0
    assert flow.stats.throughput_bps(2.0, 5.0) / 1e6 == pytest.approx(9.0, rel=0.05)


def test_flow_ids_autoassigned_and_unique():
    sim = Simulator()
    dumbbell = Dumbbell(sim, mbps(10.0), 0.020, 200e3, rng=make_rng(1))
    a = dumbbell.add_flow(FixedRateSender(rate_bps=mbps(1.0)))
    b = dumbbell.add_flow(FixedRateSender(rate_bps=mbps(1.0)))
    assert a.flow_id != b.flow_id


class _Sink:
    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def receive(self, packet):
        self.arrivals.append((self.sim.now, packet.seq))


def test_multi_hop_path_sums_delays():
    sim = Simulator()
    links = [
        Link(sim, bandwidth_bps=8e6, delay_s=0.010),
        Link(sim, bandwidth_bps=8e6, delay_s=0.020),
        Link(sim, bandwidth_bps=8e6, delay_s=0.005),
    ]
    path = Path(links)
    assert path.base_delay() == pytest.approx(0.035)
    sink = _Sink(sim)
    path.send(Packet(1, 1, size_bytes=1000), sink)
    sim.run()
    # 3 serializations of 1 ms each + 35 ms propagation.
    assert sink.arrivals[0][0] == pytest.approx(0.038)


def test_multi_hop_path_bottleneck_governs_rate():
    sim = Simulator()
    fast = Link(sim, bandwidth_bps=80e6, delay_s=0.0)
    slow = Link(sim, bandwidth_bps=8e6, delay_s=0.0)
    path = Path([fast, slow])
    sink = _Sink(sim)
    for seq in range(10):
        path.send(Packet(1, seq, size_bytes=1000), sink)
    sim.run()
    # Delivery spacing set by the slow hop: 1 ms per packet.
    times = [t for t, _ in sink.arrivals]
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(g == pytest.approx(0.001, rel=0.01) for g in gaps)


def test_empty_path_rejected():
    with pytest.raises(ValueError):
        Path([])


# ----------------------------------------------------------------------
# Topology graph: construction, routing, auditing
# ----------------------------------------------------------------------
def _diamond(sim):
    """a -> {b, c} -> d with the b branch inserted first."""
    topo = Topology(sim, rng=make_rng(1))
    for src, dst in (("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")):
        topo.add_link(src, dst, bandwidth_bps=mbps(10.0), delay_s=0.001)
    return topo


def test_bfs_routing_prefers_first_inserted_links():
    topo = _diamond(Simulator())
    names = [link.name for link in topo.route_links("a", "d")]
    assert names == ["a->b", "b->d"]


def test_route_override_pins_the_path():
    topo = _diamond(Simulator())
    topo.set_route("a", "d", ["a", "c", "d"])
    assert [link.name for link in topo.route_links("a", "d")] == ["a->c", "c->d"]
    # Only the overridden direction/pair is affected.
    assert [link.name for link in topo.route_links("a", "b")] == ["a->b"]


def test_route_override_validation():
    topo = _diamond(Simulator())
    with pytest.raises(TopologyError):
        topo.set_route("a", "d", ["a", "b"])  # does not end at dst
    with pytest.raises(TopologyError):
        topo.set_route("a", "d", ["a", "d"])  # no direct a->d link


def test_routing_error_cases():
    topo = _diamond(Simulator())
    with pytest.raises(TopologyError):
        topo.route_links("a", "nowhere")
    with pytest.raises(TopologyError):
        topo.route_links("a", "a")
    # d has no outgoing links: unreachable in the reverse direction.
    with pytest.raises(TopologyError):
        topo.route_links("d", "a")


def test_duplicate_link_name_rejected():
    sim = Simulator()
    topo = Topology(sim, rng=make_rng(1))
    topo.add_link("a", "b", bandwidth_bps=mbps(1.0), delay_s=0.0, name="x")
    with pytest.raises(TopologyError):
        topo.add_link("b", "a", bandwidth_bps=mbps(1.0), delay_s=0.0, name="x")


def test_links_tagged_with_source_node():
    topo = _diamond(Simulator())
    assert topo.links["a->b"].node == "a"
    assert topo.links["c->d"].node == "c"


def test_path_objects_are_cached_until_topology_changes():
    topo = _diamond(Simulator())
    first = topo.path("a", "d")
    assert topo.path("a", "d") is first
    topo.add_link("a", "d", bandwidth_bps=mbps(10.0), delay_s=0.0)
    assert topo.path("a", "d") is not first  # new direct link wins BFS


def test_dumbbell_is_a_topology_graph():
    sim = Simulator()
    dumbbell = Dumbbell(sim, mbps(50.0), 0.030, 375e3, rng=make_rng(1))
    assert list(dumbbell.links) == ["bottleneck", "reverse"]
    assert dumbbell.path("src", "dst").links == [dumbbell.bottleneck]
    assert dumbbell.path("dst", "src").links == [dumbbell.reverse]
    assert dumbbell.monitor is dumbbell.bottleneck


def test_parking_lot_structure_and_cross_flow_validation():
    sim = Simulator()
    lot = ParkingLot(sim, n_hops=3, bandwidth_bps=mbps(20.0), rtt_s=0.030,
                     buffer_bytes=250e3, rng=make_rng(1))
    assert [link.name for link in lot.route_links("n0", "n3")] == [
        "hop0", "hop1", "hop2"
    ]
    # Long-flow base RTT equals the configured rtt_s.
    fwd = lot.path("n0", "n3").base_delay()
    rev = lot.path("n3", "n0").base_delay()
    assert fwd + rev == pytest.approx(0.030)
    with pytest.raises(TopologyError):
        lot.add_cross_flow(CubicSender(), hop=3)


def test_parking_lot_conservation_under_cross_traffic():
    sim = Simulator()
    lot = ParkingLot(sim, n_hops=3, bandwidth_bps=mbps(20.0), rtt_s=0.030,
                     buffer_bytes=100e3, loss_rate=0.01, rng=make_rng(1))
    lot.add_flow(make_sender("proteus-s", seed=1))
    lot.add_cross_flow(make_sender("cubic", seed=2), hop=1)
    sim.run(until=8.0)
    lot.assert_conservation()
    # Hop 1 carries both flows: it is the contended one.
    assert lot.links["hop1"].stats.offered > lot.links["hop2"].stats.offered


def test_parking_lot_aqm_hops_are_dynamic_links():
    sim = Simulator()
    disciplines = []

    def factory(hop):
        disc = CoDelDiscipline(buffer_bytes=250e3)
        disciplines.append(disc)
        return disc

    lot = ParkingLot(sim, n_hops=2, bandwidth_bps=mbps(20.0), rtt_s=0.030,
                     buffer_bytes=250e3, rng=make_rng(1),
                     discipline_factory=factory)
    assert isinstance(lot.links["hop0"], DynamicLink)
    assert isinstance(lot.links["hop1"], DynamicLink)
    # One fresh discipline per hop — AQM state is never shared.
    assert len(disciplines) == 2
    assert lot.links["hop0"].discipline is not lot.links["hop1"].discipline
    # Reverse links stay analytic: ACKs need no AQM.
    assert isinstance(lot.links["rev0"], Link)


def test_multi_dumbbell_round_robins_default_endpoints():
    sim = Simulator()
    net = MultiDumbbell(sim, n_groups=3, bandwidth_bps=mbps(20.0),
                        core_bandwidth_bps=mbps(30.0), rtt_s=0.030,
                        buffer_bytes=250e3, rng=make_rng(1))
    assert net.default_endpoints(0) == ("s0", "sink")
    assert net.default_endpoints(4) == ("s1", "sink")
    # Every flow crosses its access link and the shared core.
    names = [link.name for link in net.route_links("s2", "sink")]
    assert names == ["access2", "core"]
    assert net.monitor is net.core


def test_multi_dumbbell_conservation():
    sim = Simulator()
    net = MultiDumbbell(sim, n_groups=2, bandwidth_bps=mbps(20.0),
                        core_bandwidth_bps=mbps(25.0), rtt_s=0.030,
                        buffer_bytes=100e3, rng=make_rng(1))
    net.add_flow(make_sender("cubic", seed=1))
    net.add_flow(make_sender("cubic", seed=2))
    sim.run(until=6.0)
    net.assert_conservation()
    core = net.core.stats
    assert core.offered > 0


def test_conservation_failure_names_the_hop():
    sim = Simulator()
    topo = Topology(sim, rng=make_rng(1))
    link = topo.add_link("a", "b", bandwidth_bps=mbps(10.0), delay_s=0.0)
    link.stats.offered = 1  # cooked books
    with pytest.raises(TopologyError, match="a->b"):
        topo.assert_conservation()
