"""Unit tests for topology building and multi-hop paths."""

import pytest

from repro.protocols import FixedRateSender
from repro.sim import Dumbbell, Link, Packet, Path, Simulator, make_rng, mbps


def test_mbps_helper():
    assert mbps(50.0) == 50e6


def test_dumbbell_bdp():
    sim = Simulator()
    dumbbell = Dumbbell(sim, mbps(50.0), 0.030, 375e3, rng=make_rng(1))
    assert dumbbell.bdp_bytes() == pytest.approx(50e6 * 0.030 / 8)


def test_dumbbell_reverse_path_never_bottlenecks():
    sim = Simulator()
    dumbbell = Dumbbell(sim, mbps(10.0), 0.020, 200e3, rng=make_rng(1))
    flow = dumbbell.add_flow(FixedRateSender(rate_bps=mbps(9.0)))
    sim.run(until=5.0)
    # ACK path is 40x the bottleneck: no reverse-direction drops.
    assert dumbbell.reverse.stats.tail_drops == 0
    assert flow.stats.throughput_bps(2.0, 5.0) / 1e6 == pytest.approx(9.0, rel=0.05)


def test_flow_ids_autoassigned_and_unique():
    sim = Simulator()
    dumbbell = Dumbbell(sim, mbps(10.0), 0.020, 200e3, rng=make_rng(1))
    a = dumbbell.add_flow(FixedRateSender(rate_bps=mbps(1.0)))
    b = dumbbell.add_flow(FixedRateSender(rate_bps=mbps(1.0)))
    assert a.flow_id != b.flow_id


class _Sink:
    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def receive(self, packet):
        self.arrivals.append((self.sim.now, packet.seq))


def test_multi_hop_path_sums_delays():
    sim = Simulator()
    links = [
        Link(sim, bandwidth_bps=8e6, delay_s=0.010),
        Link(sim, bandwidth_bps=8e6, delay_s=0.020),
        Link(sim, bandwidth_bps=8e6, delay_s=0.005),
    ]
    path = Path(links)
    assert path.base_delay() == pytest.approx(0.035)
    sink = _Sink(sim)
    path.send(Packet(1, 1, size_bytes=1000), sink)
    sim.run()
    # 3 serializations of 1 ms each + 35 ms propagation.
    assert sink.arrivals[0][0] == pytest.approx(0.038)


def test_multi_hop_path_bottleneck_governs_rate():
    sim = Simulator()
    fast = Link(sim, bandwidth_bps=80e6, delay_s=0.0)
    slow = Link(sim, bandwidth_bps=8e6, delay_s=0.0)
    path = Path([fast, slow])
    sink = _Sink(sim)
    for seq in range(10):
        path.send(Packet(1, seq, size_bytes=1000), sink)
    sim.run()
    # Delivery spacing set by the slow hop: 1 ms per packet.
    times = [t for t, _ in sink.arrivals]
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(g == pytest.approx(0.001, rel=0.01) for g in gaps)


def test_empty_path_rejected():
    with pytest.raises(ValueError):
        Path([])
