"""Cancelled-event compaction: the heap must not grow without bound.

Rate senders cancel and reschedule pacing timers constantly; before
compaction, every cancelled event sat in the heap until its (possibly
far-future) deadline popped.  The engine now rebuilds the heap once
cancelled entries outnumber live ones (past a minimum size), so memory
tracks live events, not cancellation churn.
"""

from repro.sim import Simulator
from repro.sim.engine import _COMPACT_MIN_HEAP


def test_compaction_shrinks_heap():
    sim = Simulator(check_invariants=False)
    events = [sim.schedule_at(1.0 + i, lambda: None) for i in range(200)]
    assert sim.heap_size() == 200
    for event in events[:150]:
        event.cancel()
    # Compaction fires when dead entries pass 50% (at the 101st cancel,
    # leaving the 99 then-live events); the heap must never again hold
    # all 200 slots, and live-event accounting stays exact.
    assert sim.heap_size() == 99
    assert sim.pending() == 50


def test_no_compaction_below_min_heap_size():
    sim = Simulator(check_invariants=False)
    n = _COMPACT_MIN_HEAP - 2
    events = [sim.schedule_at(1.0 + i, lambda: None) for i in range(n)]
    for event in events:
        event.cancel()
    # Tiny heaps are not worth rebuilding: lazy skip handles them.
    assert sim.heap_size() == n
    assert sim.pending() == 0


def test_double_cancel_counted_once():
    sim = Simulator(check_invariants=False)
    events = [sim.schedule_at(1.0 + i, lambda: None) for i in range(100)]
    for event in events[:40]:
        event.cancel()
        event.cancel()  # second cancel must not inflate the counter
    assert sim._cancelled == 40
    assert sim.heap_size() == 100  # 40/100 dead: below the 50% threshold


def test_ordering_preserved_after_compaction():
    sim = Simulator(check_invariants=False)
    fired = []
    keep = []
    for i in range(200):
        event = sim.schedule_at(1.0 + 0.01 * i, fired.append, i)
        if i % 4 != 0:
            event.cancel()
        else:
            keep.append(i)
    assert sim.heap_size() < 200
    sim.run()
    assert fired == keep


def test_popping_cancelled_events_decrements_counter():
    sim = Simulator(check_invariants=False)
    events = [sim.schedule_at(1.0 + i, lambda: None) for i in range(100)]
    for event in events[:45]:
        event.cancel()
    assert sim._cancelled == 45
    sim.run()
    assert sim._cancelled == 0
    assert sim.heap_size() == 0


def test_cancel_after_run_starts():
    sim = Simulator(check_invariants=False)
    fired = []

    def cancel_rest():
        for event in later:
            event.cancel()

    sim.schedule_at(0.5, cancel_rest)
    later = [sim.schedule_at(1.0 + i, fired.append, i) for i in range(150)]
    sim.run()
    assert fired == []
    assert sim.heap_size() == 0
