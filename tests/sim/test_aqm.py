"""Tests for AQM disciplines, the event-based link, and rate variation."""

import random

import pytest

from repro.obs import CollectingTracer
from repro.protocols import CubicSender, FixedRateSender, make_sender
from repro.sim import (
    CoDelDiscipline,
    Dumbbell,
    DynamicLink,
    HeadDropDiscipline,
    Packet,
    RandomDropDiscipline,
    REDDiscipline,
    Simulator,
    TailDropDiscipline,
    cellular_rate,
    make_rng,
    mbps,
    step_rate,
)


class TimedSink:
    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def receive(self, packet):
        self.arrivals.append((self.sim.now, packet))


# ----------------------------------------------------------------------
# Disciplines in isolation
# ----------------------------------------------------------------------
def test_taildrop_discipline_limits_bytes():
    disc = TailDropDiscipline(buffer_bytes=3000)
    rng = random.Random(0)
    pkt = Packet(1, 1, size_bytes=1500)
    assert not disc.on_enqueue(pkt, 0, 0.0, rng)
    assert not disc.on_enqueue(pkt, 1500, 0.0, rng)
    assert disc.on_enqueue(pkt, 2000, 0.0, rng)
    assert not disc.on_dequeue(pkt, 1.0, 0.0, rng)


def test_red_drops_probabilistically_between_thresholds():
    disc = REDDiscipline(
        buffer_bytes=100_000, min_th_bytes=10_000, max_th_bytes=50_000, max_p=0.5,
        weight=1.0,  # track instantaneous queue for a deterministic test
    )
    rng = random.Random(1)
    pkt = Packet(1, 1, size_bytes=1000)
    # Below min threshold: never drops.
    assert not any(disc.on_enqueue(pkt, 5_000, 0.0, rng) for _ in range(100))
    # Between thresholds: drops some fraction.
    mid_drops = sum(disc.on_enqueue(pkt, 30_000, 0.0, rng) for _ in range(1000))
    assert 100 < mid_drops < 500
    # At/above max threshold: always drops.
    assert all(disc.on_enqueue(pkt, 60_000, 0.0, rng) for _ in range(10))


def test_red_parameter_validation():
    with pytest.raises(ValueError):
        REDDiscipline(buffer_bytes=0)
    with pytest.raises(ValueError):
        REDDiscipline(buffer_bytes=1000, min_th_bytes=900, max_th_bytes=800)


def test_red_idle_decay_regression():
    """Pins the Floyd & Jacobson idle fix: ``avg`` must decay while the
    queue sits empty, not freeze at its last busy-period value."""
    disc = REDDiscipline(
        buffer_bytes=100_000, min_th_bytes=10_000, max_th_bytes=50_000, max_p=0.5,
        weight=0.5, idle_packet_s=0.001,
    )
    rng = random.Random(7)
    pkt = Packet(1, 1, size_bytes=1000)
    # Busy period: pump the EWMA well above max_th (certain-drop region).
    for _ in range(30):
        disc.on_enqueue(pkt, 60_000, 0.0, rng)
    assert disc.avg_bytes > 50_000
    # Queue drains and stays idle for a full second (1000 idle packet
    # slots at idle_packet_s=1ms): avg must decay to ~zero, so the first
    # arrival of the next busy period is never dropped.
    disc.on_idle(1.0)
    assert not disc.on_enqueue(pkt, 0, 2.0, rng)
    assert disc.avg_bytes < 10_000


def test_red_idle_decay_scales_with_idle_time():
    disc = REDDiscipline(
        buffer_bytes=100_000, min_th_bytes=10_000, max_th_bytes=50_000,
        weight=0.1, idle_packet_s=0.01,
    )
    rng = random.Random(7)
    pkt = Packet(1, 1, size_bytes=1000)
    for _ in range(50):
        disc.on_enqueue(pkt, 40_000, 0.0, rng)
    busy_avg = disc.avg_bytes
    # One idle packet slot decays by exactly one EWMA step (m == 1).
    disc.on_idle(1.0)
    disc.on_enqueue(pkt, 0, 1.01, rng)
    expected = busy_avg * (1.0 - 0.1) ** 1
    # The enqueue itself then folds in the (empty) instantaneous queue.
    expected = expected + 0.1 * (0 - expected)
    assert disc.avg_bytes == pytest.approx(expected)


def test_codel_drops_on_persistent_sojourn():
    disc = CoDelDiscipline(buffer_bytes=1e6, target_s=0.005, interval_s=0.05)
    rng = random.Random(2)
    pkt = Packet(1, 1, size_bytes=1500)
    # Short sojourn: never drops, resets state.
    assert not disc.on_dequeue(pkt, 0.001, 0.0, rng)
    # Persistent above-target sojourn: dropping starts after interval.
    drops = [disc.on_dequeue(pkt, 0.02, t * 0.01, rng) for t in range(20)]
    assert not drops[0]
    assert any(drops)
    # Recovery: one below-target sojourn ends the dropping state.
    assert not disc.on_dequeue(pkt, 0.001, 1.0, rng)


def test_codel_reentry_resumes_drop_count():
    """Pins the reference re-entry rule: a dropping episode that resumes
    within ``interval`` of the last scheduled drop continues at
    ``count - 2`` (fast convergence on a persistent flow) instead of
    restarting from 1."""
    disc = CoDelDiscipline(buffer_bytes=1e6, target_s=0.005, interval_s=0.1)
    rng = random.Random(0)
    pkt = Packet(1, 1, size_bytes=1500)
    high = 0.02  # sojourn persistently above target
    disc.on_dequeue(pkt, high, 0.0, rng)            # arms first-above at 0.1
    assert disc.on_dequeue(pkt, high, 0.10, rng)    # enter dropping: count=1
    assert disc.on_dequeue(pkt, high, 0.20, rng)    # count=2
    assert disc.on_dequeue(pkt, high, 0.28, rng)    # count=3
    assert disc.on_dequeue(pkt, high, 0.34, rng)    # count=4, next drop ~0.39
    assert disc._count == 4
    # One good dequeue ends the episode without erasing its history.
    assert not disc.on_dequeue(pkt, 0.001, 0.35, rng)
    # Quick re-entry (dropping resumes within interval of the last
    # scheduled drop): count restarts from 4 - 2 = 2, not 1.
    assert not disc.on_dequeue(pkt, high, 0.36, rng)  # re-arms at 0.46
    assert disc.on_dequeue(pkt, high, 0.46, rng)
    assert disc._count == 2


def test_codel_long_gap_resets_drop_count():
    disc = CoDelDiscipline(buffer_bytes=1e6, target_s=0.005, interval_s=0.1)
    rng = random.Random(0)
    pkt = Packet(1, 1, size_bytes=1500)
    high = 0.02
    disc.on_dequeue(pkt, high, 0.0, rng)
    for t in (0.10, 0.20, 0.28, 0.34):
        assert disc.on_dequeue(pkt, high, t, rng)
    assert not disc.on_dequeue(pkt, 0.001, 0.35, rng)
    # A long recovery (>> interval past the last scheduled drop) means
    # the congestion episode truly ended: restart from count=1.
    assert not disc.on_dequeue(pkt, high, 5.0, rng)
    assert disc.on_dequeue(pkt, high, 5.1, rng)
    assert disc._count == 1


# ----------------------------------------------------------------------
# DynamicLink behaviour
# ----------------------------------------------------------------------
def test_dynamic_link_serializes_like_fifo():
    sim = Simulator()
    link = DynamicLink(sim, rate_bps=8e6, delay_s=0.0, discipline=TailDropDiscipline(1e6))
    sink = TimedSink(sim)
    for seq in range(3):
        link.send(Packet(1, seq, size_bytes=1000), sink)
    sim.run()
    times = [t for t, _ in sink.arrivals]
    assert times == pytest.approx([0.001, 0.002, 0.003])


def test_dynamic_link_step_rate_changes_service_speed():
    sim = Simulator()
    # 8 Mbps for the first second, then 0.8 Mbps.
    rate_fn = step_rate([(0.0, 8e6), (1.0, 0.8e6)])
    link = DynamicLink(sim, rate_bps=rate_fn, delay_s=0.0)
    sink = TimedSink(sim)
    link.send(Packet(1, 1, size_bytes=1000), sink)
    sim.run()
    fast = sink.arrivals[-1][0]
    sim2 = Simulator()
    link2 = DynamicLink(sim2, rate_bps=rate_fn, delay_s=0.0)
    sink2 = TimedSink(sim2)
    sim2.schedule(2.0, link2.send, Packet(1, 1, size_bytes=1000), sink2)
    sim2.run()
    slow = sink2.arrivals[-1][0] - 2.0
    assert slow == pytest.approx(10 * fast, rel=0.01)


def test_step_rate_validation():
    with pytest.raises(ValueError):
        step_rate([])
    with pytest.raises(ValueError):
        step_rate([(1.0, 1e6), (0.0, 2e6)])


def test_cellular_rate_varies_but_stays_bounded():
    rate_fn = cellular_rate(mean_bps=10e6, period_s=1.0, depth=0.5, seed=3)
    samples = [rate_fn(t * 0.5) for t in range(40)]
    assert all(5e6 <= s <= 15e6 for s in samples)
    assert len(set(round(s) for s in samples)) > 5  # actually varies
    assert rate_fn(3.2) == rate_fn(3.7)  # constant within an epoch


def test_cellular_rate_validation():
    with pytest.raises(ValueError):
        cellular_rate(0.0)


def _overfill_link(discipline, n_packets=5, tracer=None, node=""):
    """Blast ``n_packets`` at a slow 2-packet-deep link; returns
    (link, delivered seqs)."""
    sim = Simulator(tracer=tracer)
    link = DynamicLink(
        sim,
        rate_bps=8e5,  # 15 ms per 1500-byte packet: all sends queue
        delay_s=0.0,
        discipline=discipline,
        rng=make_rng(1),
        name="hop",
    )
    link.node = node
    sink = TimedSink(sim)
    for seq in range(n_packets):
        link.send(Packet(1, seq, size_bytes=1500), sink)
    sim.run()
    return link, [pkt.seq for _, pkt in sink.arrivals]


def test_head_drop_evicts_oldest_queued():
    # Buffer holds 2 packets: one in service + one queued.  Each later
    # arrival evicts the oldest *queued* packet (never the in-service
    # head), so the survivors are the first and the last packet.
    link, seqs = _overfill_link(HeadDropDiscipline(buffer_bytes=3000))
    assert seqs == [0, 4]
    assert link.stats.aqm_drops == 3
    assert link.stats.tail_drops == 0


def test_random_drop_evicts_queued_victim():
    link, seqs = _overfill_link(RandomDropDiscipline(buffer_bytes=3000))
    # The in-service packet is never a victim; exactly one queued packet
    # survives alongside it.
    assert seqs[0] == 0
    assert len(seqs) == 2
    assert link.stats.aqm_drops == 3
    assert link.stats.tail_drops == 0


def test_taildrop_refuses_arrivals_without_evicting():
    link, seqs = _overfill_link(TailDropDiscipline(buffer_bytes=3000))
    # Tail drop keeps the oldest packets and refuses the new arrivals.
    assert seqs == [0, 1]
    assert link.stats.tail_drops == 3
    assert link.stats.aqm_drops == 0


def test_dynamic_link_drop_accounting_conserves_packets():
    for discipline in (
        TailDropDiscipline(3000),
        HeadDropDiscipline(3000),
        RandomDropDiscipline(3000),
    ):
        link, _ = _overfill_link(discipline)
        stats = link.stats
        assert stats.offered == 5
        assert (
            stats.delivered + stats.tail_drops + stats.aqm_drops
            + stats.random_losses + link.queued_packets()
        ) == stats.offered


def test_dynamic_link_trace_carries_node_and_drop_reason():
    tracer = CollectingTracer()
    _overfill_link(HeadDropDiscipline(buffer_bytes=3000), tracer=tracer, node="n2")
    events = tracer.to_dicts()
    drops = [e for e in events if e["kind"] == "link.drop"]
    assert drops and all(e["node"] == "n2" for e in drops)
    assert {e["reason"] for e in drops} == {"aqm"}
    # Every link.* event carries the hop tag.
    assert all(e["node"] == "n2" for e in events if e["kind"].startswith("link."))


# ----------------------------------------------------------------------
# End-to-end: flows over a DynamicLink bottleneck
# ----------------------------------------------------------------------
def make_aqm_dumbbell(discipline, bandwidth_mbps=20.0, seed=1):
    sim = Simulator()
    bottleneck = DynamicLink(
        sim,
        rate_bps=mbps(bandwidth_mbps),
        delay_s=0.015,
        discipline=discipline,
        rng=make_rng(seed),
        name="aqm-bottleneck",
    )
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=mbps(bandwidth_mbps),
        rtt_s=0.030,
        buffer_bytes=1e6,  # unused: bottleneck supplied
        rng=make_rng(seed),
        bottleneck=bottleneck,
    )
    return sim, dumbbell, bottleneck


def test_cubic_over_codel_keeps_queue_short():
    sim, dumbbell, bottleneck = make_aqm_dumbbell(
        CoDelDiscipline(buffer_bytes=500e3)
    )
    flow = dumbbell.add_flow(CubicSender())
    sim.run(until=20.0)
    # CoDel holds sojourn near target: p95 RTT stays far below the
    # tail-drop case (500 KB at 20 Mbps would be +200 ms).
    p95 = flow.stats.rtt_percentile(95, 10.0, 20.0)
    assert p95 < 0.080
    assert flow.stats.throughput_bps(10.0, 20.0) / 1e6 > 15.0
    # CoDel's dequeue drops are discipline decisions, not buffer
    # overflows: they land in aqm_drops, never tail_drops.
    assert bottleneck.stats.aqm_drops > 0


def test_proteus_over_red_performs():
    sim, dumbbell, _ = make_aqm_dumbbell(REDDiscipline(buffer_bytes=500e3))
    flow = dumbbell.add_flow(make_sender("proteus-p"))
    sim.run(until=20.0)
    assert flow.stats.throughput_bps(10.0, 20.0) / 1e6 > 12.0


def test_fixed_rate_over_cellular_link_tracks_capacity():
    sim = Simulator()
    bottleneck = DynamicLink(
        sim,
        rate_bps=cellular_rate(mean_bps=10e6, period_s=1.0, depth=0.5, seed=4),
        delay_s=0.015,
        discipline=TailDropDiscipline(200e3),
        rng=make_rng(5),
    )
    dumbbell = Dumbbell(
        sim, bandwidth_bps=10e6, rtt_s=0.030, buffer_bytes=1e6,
        rng=make_rng(5), bottleneck=bottleneck,
    )
    flow = dumbbell.add_flow(FixedRateSender(rate_bps=20e6))
    sim.run(until=20.0)
    achieved = flow.stats.throughput_bps(5.0, 20.0) / 1e6
    # Overdriven link delivers roughly the (time-varying) capacity mean.
    assert 7.0 < achieved < 12.0
