"""Tests for AQM disciplines, the event-based link, and rate variation."""

import random

import pytest

from repro.protocols import CubicSender, FixedRateSender, make_sender
from repro.sim import (
    CoDelDiscipline,
    Dumbbell,
    DynamicLink,
    Packet,
    REDDiscipline,
    Simulator,
    TailDropDiscipline,
    cellular_rate,
    make_rng,
    mbps,
    step_rate,
)


class TimedSink:
    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def receive(self, packet):
        self.arrivals.append((self.sim.now, packet))


# ----------------------------------------------------------------------
# Disciplines in isolation
# ----------------------------------------------------------------------
def test_taildrop_discipline_limits_bytes():
    disc = TailDropDiscipline(buffer_bytes=3000)
    rng = random.Random(0)
    pkt = Packet(1, 1, size_bytes=1500)
    assert not disc.on_enqueue(pkt, 0, 0.0, rng)
    assert not disc.on_enqueue(pkt, 1500, 0.0, rng)
    assert disc.on_enqueue(pkt, 2000, 0.0, rng)
    assert not disc.on_dequeue(pkt, 1.0, 0.0, rng)


def test_red_drops_probabilistically_between_thresholds():
    disc = REDDiscipline(
        buffer_bytes=100_000, min_th_bytes=10_000, max_th_bytes=50_000, max_p=0.5,
        weight=1.0,  # track instantaneous queue for a deterministic test
    )
    rng = random.Random(1)
    pkt = Packet(1, 1, size_bytes=1000)
    # Below min threshold: never drops.
    assert not any(disc.on_enqueue(pkt, 5_000, 0.0, rng) for _ in range(100))
    # Between thresholds: drops some fraction.
    mid_drops = sum(disc.on_enqueue(pkt, 30_000, 0.0, rng) for _ in range(1000))
    assert 100 < mid_drops < 500
    # At/above max threshold: always drops.
    assert all(disc.on_enqueue(pkt, 60_000, 0.0, rng) for _ in range(10))


def test_red_parameter_validation():
    with pytest.raises(ValueError):
        REDDiscipline(buffer_bytes=0)
    with pytest.raises(ValueError):
        REDDiscipline(buffer_bytes=1000, min_th_bytes=900, max_th_bytes=800)


def test_codel_drops_on_persistent_sojourn():
    disc = CoDelDiscipline(buffer_bytes=1e6, target_s=0.005, interval_s=0.05)
    rng = random.Random(2)
    pkt = Packet(1, 1, size_bytes=1500)
    # Short sojourn: never drops, resets state.
    assert not disc.on_dequeue(pkt, 0.001, 0.0, rng)
    # Persistent above-target sojourn: dropping starts after interval.
    drops = [disc.on_dequeue(pkt, 0.02, t * 0.01, rng) for t in range(20)]
    assert not drops[0]
    assert any(drops)
    # Recovery: one below-target sojourn ends the dropping state.
    assert not disc.on_dequeue(pkt, 0.001, 1.0, rng)


# ----------------------------------------------------------------------
# DynamicLink behaviour
# ----------------------------------------------------------------------
def test_dynamic_link_serializes_like_fifo():
    sim = Simulator()
    link = DynamicLink(sim, rate_bps=8e6, delay_s=0.0, discipline=TailDropDiscipline(1e6))
    sink = TimedSink(sim)
    for seq in range(3):
        link.send(Packet(1, seq, size_bytes=1000), sink)
    sim.run()
    times = [t for t, _ in sink.arrivals]
    assert times == pytest.approx([0.001, 0.002, 0.003])


def test_dynamic_link_step_rate_changes_service_speed():
    sim = Simulator()
    # 8 Mbps for the first second, then 0.8 Mbps.
    rate_fn = step_rate([(0.0, 8e6), (1.0, 0.8e6)])
    link = DynamicLink(sim, rate_bps=rate_fn, delay_s=0.0)
    sink = TimedSink(sim)
    link.send(Packet(1, 1, size_bytes=1000), sink)
    sim.run()
    fast = sink.arrivals[-1][0]
    sim2 = Simulator()
    link2 = DynamicLink(sim2, rate_bps=rate_fn, delay_s=0.0)
    sink2 = TimedSink(sim2)
    sim2.schedule(2.0, link2.send, Packet(1, 1, size_bytes=1000), sink2)
    sim2.run()
    slow = sink2.arrivals[-1][0] - 2.0
    assert slow == pytest.approx(10 * fast, rel=0.01)


def test_step_rate_validation():
    with pytest.raises(ValueError):
        step_rate([])
    with pytest.raises(ValueError):
        step_rate([(1.0, 1e6), (0.0, 2e6)])


def test_cellular_rate_varies_but_stays_bounded():
    rate_fn = cellular_rate(mean_bps=10e6, period_s=1.0, depth=0.5, seed=3)
    samples = [rate_fn(t * 0.5) for t in range(40)]
    assert all(5e6 <= s <= 15e6 for s in samples)
    assert len(set(round(s) for s in samples)) > 5  # actually varies
    assert rate_fn(3.2) == rate_fn(3.7)  # constant within an epoch


def test_cellular_rate_validation():
    with pytest.raises(ValueError):
        cellular_rate(0.0)


# ----------------------------------------------------------------------
# End-to-end: flows over a DynamicLink bottleneck
# ----------------------------------------------------------------------
def make_aqm_dumbbell(discipline, bandwidth_mbps=20.0, seed=1):
    sim = Simulator()
    bottleneck = DynamicLink(
        sim,
        rate_bps=mbps(bandwidth_mbps),
        delay_s=0.015,
        discipline=discipline,
        rng=make_rng(seed),
        name="aqm-bottleneck",
    )
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=mbps(bandwidth_mbps),
        rtt_s=0.030,
        buffer_bytes=1e6,  # unused: bottleneck supplied
        rng=make_rng(seed),
        bottleneck=bottleneck,
    )
    return sim, dumbbell, bottleneck


def test_cubic_over_codel_keeps_queue_short():
    sim, dumbbell, bottleneck = make_aqm_dumbbell(
        CoDelDiscipline(buffer_bytes=500e3)
    )
    flow = dumbbell.add_flow(CubicSender())
    sim.run(until=20.0)
    # CoDel holds sojourn near target: p95 RTT stays far below the
    # tail-drop case (500 KB at 20 Mbps would be +200 ms).
    p95 = flow.stats.rtt_percentile(95, 10.0, 20.0)
    assert p95 < 0.080
    assert flow.stats.throughput_bps(10.0, 20.0) / 1e6 > 15.0
    assert bottleneck.stats.tail_drops > 0


def test_proteus_over_red_performs():
    sim, dumbbell, _ = make_aqm_dumbbell(REDDiscipline(buffer_bytes=500e3))
    flow = dumbbell.add_flow(make_sender("proteus-p"))
    sim.run(until=20.0)
    assert flow.stats.throughput_bps(10.0, 20.0) / 1e6 > 12.0


def test_fixed_rate_over_cellular_link_tracks_capacity():
    sim = Simulator()
    bottleneck = DynamicLink(
        sim,
        rate_bps=cellular_rate(mean_bps=10e6, period_s=1.0, depth=0.5, seed=4),
        delay_s=0.015,
        discipline=TailDropDiscipline(200e3),
        rng=make_rng(5),
    )
    dumbbell = Dumbbell(
        sim, bandwidth_bps=10e6, rtt_s=0.030, buffer_bytes=1e6,
        rng=make_rng(5), bottleneck=bottleneck,
    )
    flow = dumbbell.add_flow(FixedRateSender(rate_bps=20e6))
    sim.run(until=20.0)
    achieved = flow.stats.throughput_bps(5.0, 20.0) / 1e6
    # Overdriven link delivers roughly the (time-varying) capacity mean.
    assert 7.0 < achieved < 12.0
