"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for label in range(5):
        sim.schedule(1.0, fired.append, label)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(5.0, fired.append, "x")
    sim.run()
    assert sim.now == 5.0
    assert fired == ["x"]


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_run_until_stops_and_advances_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(10.0, fired.append, "late")
    sim.run(until=5.0)
    assert fired == ["early"]
    assert sim.now == 5.0
    sim.run()
    assert fired == ["early", "late"]


def test_events_scheduled_during_run_are_executed():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert not sim.step()
    sim.schedule(1.0, lambda: None)
    assert sim.step()
    assert not sim.step()


def test_pending_counts_only_live_events():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending() == 1
    assert keep.time == 1.0


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_schedule_fast_interleaves_with_events():
    # Fast-path and Event-path callbacks share one queue and one total
    # order (time, then scheduling sequence).
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "event@2")
    sim.schedule_fast(1.0, fired.append, "fast@1")
    sim.schedule_fast(2.0, fired.append, "fast@2")
    sim.schedule_fast_at(3.0, fired.append, "fast@3")
    sim.run()
    assert fired == ["fast@1", "event@2", "fast@2", "fast@3"]
    assert sim.now == 3.0


def test_schedule_fast_returns_no_handle():
    sim = Simulator()
    assert sim.schedule_fast(1.0, lambda: None) is None
    assert sim.schedule_fast_at(2.0, lambda: None) is None


def test_schedule_fast_validates_like_schedule():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_fast(-1.0, lambda: None)
    sim.schedule_fast(1.0, lambda: None)
    sim.run()


def test_schedule_fast_at_clamps_past_times_to_now():
    # A past timestamp is clamped to `now` (not an error): analytic
    # fast-forward can compute delivery times a rounding hair behind the
    # clock, and the batched dispatcher relies on never seeing an entry
    # behind the batch it is draining.
    from repro.obs import CollectingTracer

    tracer = CollectingTracer()
    sim = Simulator(tracer=tracer)
    sim.schedule_fast(1.0, lambda: None)
    sim.run()
    assert sim.now == 1.0
    fired = []
    sim.schedule_fast_at(0.5, fired.append, "late")
    sim.run()
    assert fired == ["late"]
    assert sim.now == 1.0  # clamped, not rewound
    past = [ev for ev in tracer.events if ev.kind == "sim.schedule.past"]
    assert len(past) == 1
    assert past[0].fields["scheduled_s"] == 0.5
    assert past[0].fields["lag_s"] == pytest.approx(0.5)


def test_pending_is_constant_time_and_counts_fast_events():
    sim = Simulator(check_invariants=False)
    for i in range(10):
        sim.schedule_fast(1.0 + i, lambda: None)
    events = [sim.schedule(20.0 + i, lambda: None) for i in range(5)]
    assert sim.pending() == 15
    events[0].cancel()
    events[1].cancel()
    assert sim.pending() == 13
    assert sim.heap_size() == 15  # lazy cancellation: entries still queued


def test_pending_counter_matches_scan_under_churn():
    sim = Simulator(check_invariants=False)
    events = []

    def churn():
        for event in events[::3]:
            event.cancel()

    events.extend(sim.schedule(5.0 + i, lambda: None) for i in range(90))
    sim.schedule_fast(1.0, churn)
    sim.run(until=2.0)
    assert sim.pending() == sim._pending_scan()


def test_cancel_after_fire_keeps_accounting_exact():
    sim = Simulator(check_invariants=False)
    event = sim.schedule(1.0, lambda: None)
    survivor = sim.schedule(2.0, lambda: None)
    sim.run(until=1.5)  # `event` has fired
    event.cancel()  # late cancel: harmless no-op
    assert sim.pending() == 1
    assert survivor.cancelled is False


def test_step_runs_fast_events():
    sim = Simulator()
    fired = []
    sim.schedule_fast(1.0, fired.append, "x")
    assert sim.step()
    assert fired == ["x"]
    assert not sim.step()


def test_events_fired_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule_fast(1.0 + i, lambda: None)
    sim.schedule(9.0, lambda: None)
    sim.run()
    assert sim.events_fired == 5


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
def test_property_events_always_fire_in_nondecreasing_time(delays):
    sim = Simulator()
    times = []
    for d in delays:
        sim.schedule(d, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
    assert len(times) == len(delays)
