"""Tests pinning the Vivace baseline's configuration differences.

The Vivace-vs-Proteus comparisons throughout the benchmarks are only
meaningful if the baseline really lacks Proteus's additions; these tests
pin that configuration so a refactor cannot silently give Vivace the
majority rule or the adaptive tolerance pipeline.
"""

from repro.core.noise_tolerance import NoiseToleranceConfig
from repro.core.utility import VivaceUtility
from repro.protocols import VivaceSender, make_sender
from repro.core import ProteusSender


def test_vivace_uses_original_utility():
    sender = VivaceSender()
    assert isinstance(sender.utility, VivaceUtility)
    assert type(sender.utility) is VivaceUtility  # not the Proteus subclass


def test_vivace_probing_is_two_pair_unanimous():
    sender = VivaceSender()
    assert sender.controller.config.probe_pairs == 2
    assert sender.controller.config.require_unanimous


def test_vivace_disables_adaptive_tolerance():
    sender = VivaceSender()
    assert not sender.noise_config.ack_filter
    assert not sender.noise_config.trending_tolerance
    assert not sender.noise_config.majority_rule
    # It keeps the fixed-threshold analogue (regression tolerance).
    assert sender.noise_config.regression_tolerance
    assert sender.ack_filter is None


def test_proteus_defaults_enable_everything():
    sender = make_sender("proteus-s")
    assert isinstance(sender, ProteusSender)
    assert sender.noise_config.ack_filter
    assert sender.noise_config.regression_tolerance
    assert sender.noise_config.trending_tolerance
    assert sender.noise_config.majority_rule
    assert sender.controller.config.probe_pairs == 3
    assert sender.ack_filter is not None


def test_majority_rule_flag_drives_probe_pairs():
    sender = ProteusSender(
        "proteus-p",
        noise_config=NoiseToleranceConfig(majority_rule=False),
    )
    assert sender.controller.config.probe_pairs == 2
