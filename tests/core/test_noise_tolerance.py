"""Unit tests for the §5 noise-tolerance mechanisms."""

import pytest

from repro.core import (
    AckIntervalFilter,
    IntervalMetrics,
    NoiseToleranceConfig,
    NoiseTolerancePipeline,
    TrendingTracker,
)


def metrics(gradient=0.0, deviation=0.0, regression_err=0.0, avg_rtt=0.030):
    return IntervalMetrics(
        duration_s=0.030,
        rate_mbps=10.0,
        throughput_mbps=10.0,
        loss_rate=0.0,
        n_samples=50,
        avg_rtt_s=avg_rtt,
        rtt_gradient=gradient,
        rtt_deviation_s=deviation,
        regression_error=regression_err,
    )


# ----------------------------------------------------------------------
# Per-ACK filtering
# ----------------------------------------------------------------------
def test_ack_filter_accepts_regular_stream():
    f = AckIntervalFilter()
    assert all(f.accept(i * 0.01, 0.030) for i in range(100))
    assert f.suppressed_count == 0


def test_ack_filter_suppresses_after_burst_gap():
    f = AckIntervalFilter(ratio_threshold=50.0)
    t = 0.0
    for _ in range(20):
        assert f.accept(t, 0.030)
        t += 0.001
    # A 100x gap (MAC stall) then a burst of high-RTT samples.
    t += 0.100
    assert not f.accept(t, 0.130)
    assert not f.accept(t + 0.0001, 0.128)
    assert f.suppressed_count == 2
    # Recovery: an RTT below the EWMA average re-enables sampling.
    assert f.accept(t + 0.0002, 0.029)


def test_ack_filter_baseline_frozen_through_burst():
    """Regression: two stall/burst episodes separated by normal traffic.

    The interval baseline must freeze during suppression — if the
    compressed intra-burst gap (10 us) became the baseline, the first
    legitimate 1 ms gap after recovery would show a 100x ratio and
    re-trip the filter, locking it into a suppression loop.
    """
    f = AckIntervalFilter(ratio_threshold=50.0)
    t = 0.0
    for _ in range(20):
        assert f.accept(t, 0.030)
        t += 0.001
    # First MAC stall, then a compressed burst of high-RTT samples.
    t += 0.100
    assert not f.accept(t, 0.130)
    t += 0.00001
    assert not f.accept(t, 0.128)
    assert f.suppressed_count == 2
    # Recovery: an RTT below the EWMA re-enables sampling.
    t += 0.00001
    assert f.accept(t, 0.029)
    # The next legitimate 1 ms gap must be accepted: against the frozen
    # 1 ms baseline the ratio is ~1, not ~100.
    t += 0.001
    assert f.accept(t, 0.030)
    assert f.suppressed_count == 2
    # A second genuine stall still trips the filter.
    t += 0.100
    assert not f.accept(t, 0.130)
    assert f.suppressed_count == 3


def test_ack_filter_ratio_threshold_validation():
    with pytest.raises(ValueError):
        AckIntervalFilter(ratio_threshold=1.0)


def test_ack_filter_ewma_ignores_suppressed_samples():
    f = AckIntervalFilter()
    for i in range(10):
        f.accept(i * 0.001, 0.030)
    before = f._ewma_rtt
    f.accept(0.009 + 0.200, 0.230)  # suppressed: giant gap
    assert f._ewma_rtt == before


# ----------------------------------------------------------------------
# Trending tracker
# ----------------------------------------------------------------------
def test_trending_gradient_detects_slow_persistent_increase():
    tracker = TrendingTracker(history_k=6)
    # Stable RTTs first to settle the estimators.
    for _ in range(30):
        tracker.update(avg_rtt_s=0.030, rtt_deviation_s=0.0005)
    assert tracker.gradient_is_noise()
    # Slow persistent increase: +1 ms per MI. Detection fires at the trend
    # onset (the EWMA band later adapts, as the kernel estimators do).
    detections = []
    for i in range(8):
        tracker.update(avg_rtt_s=0.030 + 0.001 * (i + 1), rtt_deviation_s=0.0005)
        detections.append(not tracker.gradient_is_noise())
    assert any(detections[:4])


def test_trending_deviation_detects_excursion():
    tracker = TrendingTracker(history_k=6)
    for _ in range(30):
        tracker.update(avg_rtt_s=0.030, rtt_deviation_s=0.0005)
    assert tracker.deviation_is_noise()
    detections = []
    for _ in range(4):
        tracker.update(avg_rtt_s=0.030, rtt_deviation_s=0.008)
        detections.append(not tracker.deviation_is_noise())
    assert any(detections)


def test_trending_tracker_validation():
    with pytest.raises(ValueError):
        TrendingTracker(history_k=1)


# ----------------------------------------------------------------------
# Pipeline composition
# ----------------------------------------------------------------------
def test_pipeline_zeroes_sub_error_gradient_in_steady_noise():
    pipeline = NoiseTolerancePipeline()
    # Settle the trending estimators on steady noise.
    for _ in range(30):
        pipeline.filter_metrics(
            metrics(gradient=0.001, deviation=0.0005, regression_err=0.01)
        )
    out = pipeline.filter_metrics(
        metrics(gradient=0.001, deviation=0.0005, regression_err=0.01)
    )
    assert out.rtt_gradient == 0.0
    assert out.rtt_deviation_s == 0.0


def test_pipeline_keeps_significant_gradient():
    pipeline = NoiseTolerancePipeline()
    for _ in range(30):
        pipeline.filter_metrics(metrics(gradient=0.0, deviation=0.0))
    out = pipeline.filter_metrics(
        metrics(gradient=0.05, deviation=0.002, regression_err=0.001)
    )
    # |gradient| >= regression error: signal passes untouched.
    assert out.rtt_gradient == 0.05
    assert out.rtt_deviation_s == 0.002


def test_pipeline_trending_rescues_persistent_trend():
    """A slow trend hidden by per-MI tolerance is kept via trending."""
    pipeline = NoiseTolerancePipeline()
    for _ in range(30):
        pipeline.filter_metrics(
            metrics(gradient=0.0005, deviation=0.0002, regression_err=0.01)
        )
    # Persistent RTT climb, each individual MI within regression error.
    outs = []
    for i in range(8):
        outs.append(
            pipeline.filter_metrics(
                metrics(
                    gradient=0.002,
                    deviation=0.0002,
                    regression_err=0.01,
                    avg_rtt=0.030 + 0.002 * (i + 1),
                )
            )
        )
    assert any(o.rtt_gradient != 0.0 for o in outs)


def test_pipeline_disabled_passes_everything_through():
    config = NoiseToleranceConfig(
        ack_filter=False, regression_tolerance=False, trending_tolerance=False
    )
    pipeline = NoiseTolerancePipeline(config)
    m = metrics(gradient=0.0001, deviation=0.00005, regression_err=1.0)
    out = pipeline.filter_metrics(m)
    assert out.rtt_gradient == m.rtt_gradient
    assert out.rtt_deviation_s == m.rtt_deviation_s


def test_pipeline_regression_only_mode():
    config = NoiseToleranceConfig(trending_tolerance=False)
    pipeline = NoiseTolerancePipeline(config)
    out = pipeline.filter_metrics(
        metrics(gradient=0.001, deviation=0.002, regression_err=0.01)
    )
    assert out.rtt_gradient == 0.0
    assert out.rtt_deviation_s == 0.0
    out = pipeline.filter_metrics(
        metrics(gradient=0.1, deviation=0.002, regression_err=0.01)
    )
    assert out.rtt_gradient == 0.1
