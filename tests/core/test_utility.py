"""Unit tests for the Proteus utility library (§4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AllegroUtility,
    HybridUtility,
    IntervalMetrics,
    PrimaryUtility,
    ScavengerUtility,
    VivaceUtility,
    make_utility,
)


def metrics(
    rate_mbps=10.0, loss=0.0, gradient=0.0, deviation=0.0, avg_rtt=0.030
) -> IntervalMetrics:
    return IntervalMetrics(
        duration_s=0.030,
        rate_mbps=rate_mbps,
        throughput_mbps=rate_mbps * (1 - loss),
        loss_rate=loss,
        n_samples=50,
        avg_rtt_s=avg_rtt,
        rtt_gradient=gradient,
        rtt_deviation_s=deviation,
        regression_error=0.0,
    )


def test_primary_clean_interval_rewards_rate():
    u = PrimaryUtility()
    assert u(metrics(rate_mbps=10.0)) == pytest.approx(10.0 ** 0.9)
    assert u(metrics(rate_mbps=20.0)) > u(metrics(rate_mbps=10.0))


def test_primary_penalizes_positive_gradient_only():
    u = PrimaryUtility()
    clean = u(metrics())
    inflating = u(metrics(gradient=0.01))
    deflating = u(metrics(gradient=-0.01))
    assert inflating < clean
    assert deflating == pytest.approx(clean)  # Eq. 1: negative grad ignored


def test_vivace_rewards_negative_gradient():
    u = VivaceUtility()
    clean = u(metrics())
    deflating = u(metrics(gradient=-0.01))
    assert deflating > clean  # original Vivace semantics


def test_primary_loss_penalty_matches_coefficients():
    u = PrimaryUtility()
    x = 10.0
    expected = x ** 0.9 - 11.35 * x * 0.02
    assert u(metrics(rate_mbps=x, loss=0.02)) == pytest.approx(expected)


def test_loss_coefficient_tolerates_5_percent():
    """c = 11.35 keeps marginal utility positive below ~5% random loss."""
    u = PrimaryUtility()
    lo, hi = 10.0, 10.5
    for loss, expect_growth in ((0.04, True), (0.10, False)):
        grows = u(metrics(rate_mbps=hi, loss=loss)) > u(metrics(rate_mbps=lo, loss=loss))
        assert grows is expect_growth


def test_scavenger_deviation_penalty():
    u = ScavengerUtility()
    x = 10.0
    sigma = 0.002
    expected = x ** 0.9 - 1500.0 * x * sigma
    assert u(metrics(rate_mbps=x, deviation=sigma)) == pytest.approx(expected)


def test_scavenger_equals_primary_without_deviation():
    p, s = PrimaryUtility(), ScavengerUtility()
    m = metrics(rate_mbps=7.0, loss=0.01, gradient=0.005)
    assert s(m) == pytest.approx(p(m))


def test_hybrid_switches_at_threshold():
    u = HybridUtility(threshold_bps=8e6)
    below = metrics(rate_mbps=7.0, deviation=0.002)
    above = metrics(rate_mbps=9.0, deviation=0.002)
    assert u(below) == pytest.approx(PrimaryUtility()(below))
    assert u(above) == pytest.approx(ScavengerUtility()(above))


def test_hybrid_threshold_updates_live():
    u = HybridUtility(threshold_bps=float("inf"))
    m = metrics(rate_mbps=9.0, deviation=0.002)
    assert u(m) == pytest.approx(PrimaryUtility()(m))
    u.set_threshold(5e6)
    assert u(m) == pytest.approx(ScavengerUtility()(m))
    with pytest.raises(ValueError):
        u.set_threshold(-1.0)


def test_utility_parameter_validation():
    with pytest.raises(ValueError):
        VivaceUtility(t=1.5)
    with pytest.raises(ValueError):
        VivaceUtility(b=-1.0)
    with pytest.raises(ValueError):
        ScavengerUtility(d=0.0)


def test_make_utility_factory():
    assert isinstance(make_utility("proteus-p"), PrimaryUtility)
    assert isinstance(make_utility("proteus-s"), ScavengerUtility)
    assert isinstance(make_utility("proteus-h"), HybridUtility)
    assert isinstance(make_utility("vivace"), VivaceUtility)
    assert isinstance(make_utility("allegro"), AllegroUtility)
    with pytest.raises(ValueError, match="unknown utility"):
        make_utility("bogus")


def test_uses_deviation_flags():
    assert not make_utility("proteus-p").uses_deviation()
    assert make_utility("proteus-s").uses_deviation()
    assert make_utility("proteus-h").uses_deviation()


def test_allegro_sigmoid_collapses_on_heavy_loss():
    u = AllegroUtility()
    assert u(metrics(rate_mbps=10.0, loss=0.0)) > 0
    assert u(metrics(rate_mbps=10.0, loss=0.2)) < 0


@settings(max_examples=60, deadline=None)
@given(
    x=st.floats(min_value=0.1, max_value=500.0),
    sigma=st.floats(min_value=0.0, max_value=0.1),
    grad=st.floats(min_value=0.0, max_value=1.0),
    loss=st.floats(min_value=0.0, max_value=0.5),
)
def test_property_scavenger_never_exceeds_primary(x, sigma, grad, loss):
    """u_S <= u_P pointwise: the deviation term is a pure penalty."""
    m = metrics(rate_mbps=x, loss=loss, gradient=grad, deviation=sigma)
    assert ScavengerUtility()(m) <= PrimaryUtility()(m) + 1e-9


@settings(max_examples=60, deadline=None)
@given(x=st.floats(min_value=0.1, max_value=500.0))
def test_property_clean_utility_monotone_in_rate(x):
    """With no penalties, more rate is always better (concave but rising)."""
    u = PrimaryUtility()
    assert u(metrics(rate_mbps=x * 1.1)) > u(metrics(rate_mbps=x))
