"""Unit tests for monitor-interval bookkeeping."""

import pytest

from repro.core import MonitorInterval


def make_mi(rate_bps=10e6, duration=0.03):
    return MonitorInterval(1, rate_bps, start=0.0, duration_s=duration)


def test_completion_requires_closure_and_accounting():
    mi = make_mi()
    mi.record_send(1500)
    mi.record_send(1500)
    assert not mi.is_complete()
    mi.record_ack(0.0, 0.03, 1500)
    mi.record_loss()
    assert not mi.is_complete()  # still open for sending
    mi.closed = True
    assert mi.is_complete()


def test_empty_closed_mi_is_complete():
    mi = make_mi()
    mi.closed = True
    assert mi.is_complete()


def test_actual_rate_and_app_limited():
    mi = make_mi(rate_bps=10e6, duration=0.03)
    # Planned bytes at 10 Mbps for 30 ms = 37.5 KB; send only 15 KB.
    for _ in range(10):
        mi.record_send(1500)
    assert mi.actual_rate_bps() == pytest.approx(10 * 1500 * 8 / 0.03)
    assert mi.app_limited()
    # Fill to ~100% of plan: no longer app-limited.
    for _ in range(15):
        mi.record_send(1500)
    assert not mi.app_limited()


def test_metrics_use_planned_rate_and_are_cached():
    mi = make_mi(rate_bps=8e6, duration=0.03)
    for i in range(5):
        mi.record_send(1500)
        mi.record_ack(i * 0.005, 0.03, 1500)
    mi.closed = True
    metrics = mi.compute_metrics()
    assert metrics.rate_mbps == pytest.approx(8.0)
    assert metrics.n_samples == 5
    assert mi.compute_metrics() is metrics  # cached


def test_loss_rate_in_metrics():
    mi = make_mi()
    for i in range(8):
        mi.record_send(1500)
    for i in range(6):
        mi.record_ack(i * 0.003, 0.03, 1500)
    mi.record_loss()
    mi.record_loss()
    mi.closed = True
    assert mi.compute_metrics().loss_rate == pytest.approx(2 / 8)
