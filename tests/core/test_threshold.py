"""Unit tests for the Proteus-H cross-layer threshold policy (§4.4)."""

import pytest

from repro.core import VideoThresholdPolicy


def test_sufficient_rate_rule_caps_at_g_times_max():
    policy = VideoThresholdPolicy(max_bitrate_bps=40e6)
    # Plenty of free buffer: only rule 1 applies.
    assert policy.threshold_bps(40e6, free_buffer_chunks=10.0) == pytest.approx(
        1.5 * 40e6
    )


def test_buffer_limit_rule_shrinks_threshold_as_buffer_fills():
    policy = VideoThresholdPolicy(max_bitrate_bps=40e6)
    # current bitrate 10 Mbps keeps rule 2 the binding constraint.
    nearly_full = policy.threshold_bps(10e6, free_buffer_chunks=0.5)
    half = policy.threshold_bps(10e6, free_buffer_chunks=1.5)
    assert nearly_full == pytest.approx(10e6 / 1.5)
    assert half == pytest.approx(10e6 / 0.5)
    assert nearly_full < half


def test_buffer_limit_only_applies_below_two_chunks():
    policy = VideoThresholdPolicy(max_bitrate_bps=10e6)
    assert policy.threshold_bps(10e6, free_buffer_chunks=2.0) == pytest.approx(15e6)
    # Just below two free chunks: rule 2 caps at 10 / (2 - 1.9) ~ 100 Mbps,
    # still above rule 1; shrink further to bind.
    assert policy.threshold_bps(10e6, free_buffer_chunks=0.5) < 15e6


def test_buffer_full_threshold_halves_current_bitrate():
    policy = VideoThresholdPolicy(max_bitrate_bps=40e6)
    # f -> 0: threshold -> bitrate/2 (loading fast is pointless).
    assert policy.threshold_bps(8e6, free_buffer_chunks=0.0) == pytest.approx(4e6)


def test_emergency_rule_overrides_everything():
    policy = VideoThresholdPolicy(max_bitrate_bps=40e6)
    policy.on_rebuffer_start()
    assert policy.threshold_bps(1e6, free_buffer_chunks=0.1) == float("inf")
    policy.on_rebuffer_end()
    assert policy.threshold_bps(1e6, free_buffer_chunks=0.1) < float("inf")


def test_threshold_is_max_satisfying_both_rules():
    policy = VideoThresholdPolicy(max_bitrate_bps=10e6)
    # Rule 1 cap: 15 Mbps. Rule 2 with f=1, bitrate=20: 20 Mbps. Min wins.
    assert policy.threshold_bps(20e6, free_buffer_chunks=1.0) == pytest.approx(15e6)
    # Rule 2 tighter: f=0.5, bitrate=6: 4 Mbps.
    assert policy.threshold_bps(6e6, free_buffer_chunks=0.5) == pytest.approx(4e6)


def test_policy_validation():
    with pytest.raises(ValueError):
        VideoThresholdPolicy(max_bitrate_bps=0.0)
    with pytest.raises(ValueError):
        VideoThresholdPolicy(max_bitrate_bps=1e6, g=0.0)
