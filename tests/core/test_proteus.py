"""Integration tests for the assembled Proteus sender."""

import pytest

from repro.core import HybridUtility, ProteusSender, ScavengerUtility
from repro.core.noise_tolerance import NoiseToleranceConfig
from repro.protocols import CubicSender, make_sender
from repro.sim import Dumbbell, Simulator, make_rng, mbps, wifi_noise


def build(bandwidth_mbps=50.0, rtt_ms=30.0, buffer_kb=375.0, loss=0.0,
          noise=None, seed=1):
    sim = Simulator()
    dumbbell = Dumbbell(
        sim,
        bandwidth_bps=mbps(bandwidth_mbps),
        rtt_s=rtt_ms / 1e3,
        buffer_bytes=buffer_kb * 1e3,
        loss_rate=loss,
        noise=noise,
        rng=make_rng(seed),
    )
    return sim, dumbbell


def test_proteus_p_saturates_link():
    sim, dumbbell = build()
    flow = dumbbell.add_flow(ProteusSender("proteus-p"))
    sim.run(until=20.0)
    assert flow.stats.throughput_bps(10.0, 20.0) / 1e6 > 44.0


def test_proteus_p_works_with_tiny_buffer():
    """Fig 3a: Proteus saturates with a 4.5 KB (3-packet) buffer."""
    sim, dumbbell = build(buffer_kb=4.5)
    flow = dumbbell.add_flow(ProteusSender("proteus-p"))
    sim.run(until=20.0)
    assert flow.stats.throughput_bps(10.0, 20.0) / 1e6 > 42.0


def test_proteus_p_keeps_latency_low():
    """Fig 3b: inflation ratio below ~10% at 2 BDP buffer."""
    sim, dumbbell = build(buffer_kb=375.0)
    flow = dumbbell.add_flow(ProteusSender("proteus-p"))
    sim.run(until=20.0)
    p95 = flow.stats.rtt_percentile(95, 10.0, 20.0)
    drain = 375e3 * 8 / 50e6  # 60 ms of queue
    inflation = (p95 - 0.030) / drain
    assert inflation < 0.30


def test_proteus_p_tolerates_5pct_random_loss():
    """Fig 4: c = 11.35 gives ~5% loss tolerance.

    Quantitatively, per-MI loss sampling noise keeps the simulated sender
    below the paper's near-capacity level, but the defining shape holds:
    an order of magnitude above loss-halving protocols at 4% random loss.
    """
    sim, dumbbell = build(loss=0.04)
    flow = dumbbell.add_flow(ProteusSender("proteus-p"))
    sim.run(until=40.0)
    proteus_thr = flow.stats.throughput_bps(15.0, 40.0) / 1e6

    sim2, dumbbell2 = build(loss=0.04)
    cubic = dumbbell2.add_flow(CubicSender())
    sim2.run(until=40.0)
    cubic_thr = cubic.stats.throughput_bps(15.0, 40.0) / 1e6

    assert proteus_thr > 20.0
    assert proteus_thr > 5.0 * cubic_thr


def test_proteus_s_yields_to_cubic():
    sim, dumbbell = build()
    cubic = dumbbell.add_flow(CubicSender())
    scavenger = dumbbell.add_flow(ProteusSender("proteus-s"), start_time=5.0)
    sim.run(until=30.0)
    cubic_thr = cubic.stats.throughput_bps(15.0, 30.0) / 1e6
    scav_thr = scavenger.stats.throughput_bps(15.0, 30.0) / 1e6
    assert cubic_thr > 44.0  # >88% of capacity kept by the primary
    assert scav_thr < 5.0


def test_proteus_s_alone_performs_like_primary():
    """Scavenger goal 2: full performance when no primaries compete."""
    sim, dumbbell = build()
    flow = dumbbell.add_flow(ProteusSender("proteus-s"))
    sim.run(until=20.0)
    assert flow.stats.throughput_bps(10.0, 20.0) / 1e6 > 42.0


def test_dynamic_utility_switch_mid_flow():
    """Flexibility goal: swap scavenger -> primary in a running flow.

    The competing primary is Proteus-P (a latency-aware protocol the
    scavenger yields to, and which shares fairly with another Proteus-P
    after the switch).
    """
    sim, dumbbell = build()
    primary = dumbbell.add_flow(ProteusSender("proteus-p", seed=11))
    proteus = ProteusSender("proteus-s", seed=12)
    pflow = dumbbell.add_flow(proteus, start_time=10.0)
    sim.run(until=40.0)
    yielding_thr = pflow.stats.throughput_bps(25.0, 40.0) / 1e6
    primary_thr = primary.stats.throughput_bps(25.0, 40.0) / 1e6
    proteus.set_utility("proteus-p")
    sim.run(until=80.0)
    after_thr = pflow.stats.throughput_bps(60.0, 80.0) / 1e6
    assert yielding_thr < 0.5 * primary_thr  # scavenger mode: minority share
    assert after_thr > 1.3 * max(yielding_thr, 1.0)  # primary mode: recovers


def test_set_threshold_requires_hybrid():
    sender = ProteusSender("proteus-p")
    with pytest.raises(TypeError):
        sender.set_threshold(1e6)
    hybrid = ProteusSender("proteus-h")
    hybrid.set_threshold(5e6)
    assert isinstance(hybrid.utility, HybridUtility)
    assert hybrid.utility.threshold_bps == 5e6


def test_hybrid_infinite_threshold_behaves_primary():
    sim, dumbbell = build()
    flow = dumbbell.add_flow(ProteusSender("proteus-h"))
    sim.run(until=20.0)
    assert flow.stats.throughput_bps(10.0, 20.0) / 1e6 > 42.0


def test_hybrid_low_threshold_yields_above_it():
    sim, dumbbell = build()
    hybrid = ProteusSender("proteus-h")
    hybrid.set_threshold(mbps(10.0))
    hflow = dumbbell.add_flow(hybrid)
    dumbbell.add_flow(CubicSender(), start_time=5.0)
    sim.run(until=40.0)
    # The hybrid defends its 10 Mbps threshold region but yields above.
    thr = hflow.stats.throughput_bps(20.0, 40.0) / 1e6
    assert thr < 25.0


def test_proteus_under_wifi_noise_still_performs():
    """§5: the tolerance mechanisms keep utilization under latency noise."""
    sim, dumbbell = build(bandwidth_mbps=30.0, noise=wifi_noise(1.0))
    flow = dumbbell.add_flow(ProteusSender("proteus-p"))
    sim.run(until=25.0)
    assert flow.stats.throughput_bps(12.0, 25.0) / 1e6 > 15.0


def test_noise_tolerance_ablation_on_noisy_link():
    """Proteus-P with tolerance >= Vivace-style without, under noise."""
    def run(noise_config):
        sim, dumbbell = build(bandwidth_mbps=30.0, noise=wifi_noise(1.5), seed=7)
        sender = ProteusSender("proteus-p", noise_config=noise_config)
        flow = dumbbell.add_flow(sender)
        sim.run(until=25.0)
        return flow.stats.throughput_bps(12.0, 25.0) / 1e6

    with_tolerance = run(None)  # all mechanisms on
    without = run(
        NoiseToleranceConfig(
            ack_filter=False,
            regression_tolerance=False,
            trending_tolerance=False,
            majority_rule=False,
        )
    )
    assert with_tolerance >= without * 0.9  # never much worse
    assert with_tolerance > 10.0


def test_mi_log_collects_when_enabled():
    sim, dumbbell = build()
    sender = ProteusSender("proteus-p")
    sender.keep_mi_log = True
    dumbbell.add_flow(sender)
    sim.run(until=5.0)
    assert len(sender.mi_log) > 20
    mi = sender.mi_log[10]
    assert mi.utility is not None
    assert mi.metrics is not None
    assert mi.is_complete()


def test_pause_aborts_current_mi():
    sim, dumbbell = build()
    sender = ProteusSender("proteus-p")
    dumbbell.add_flow(sender)
    sim.run(until=5.0)
    sender.pause()
    sim.run(until=6.0)
    assert sender._current_mi is None
    sender.resume()
    sim.run(until=7.0)
    assert sender._current_mi is not None


def test_factory_names_resolve_to_expected_utilities():
    s = make_sender("proteus-s")
    assert isinstance(s.utility, ScavengerUtility)
    h = make_sender("proteus-h")
    assert isinstance(h.utility, HybridUtility)
