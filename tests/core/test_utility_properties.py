"""Property-based tests for the utility library's theoretical premises.

Appendix A's equilibrium proofs rest on structural properties of the
utility functions (concavity in own rate, penalties linear in rate).
These tests check the implemented functions satisfy them numerically,
so a future edit cannot silently break the theory the paper depends on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    HybridUtility,
    IntervalMetrics,
    PrimaryUtility,
    ScavengerUtility,
    VivaceUtility,
)


def metrics(rate, loss=0.0, gradient=0.0, deviation=0.0):
    return IntervalMetrics(
        duration_s=0.03,
        rate_mbps=rate,
        throughput_mbps=rate * (1 - loss),
        loss_rate=loss,
        n_samples=100,
        avg_rtt_s=0.03,
        rtt_gradient=gradient,
        rtt_deviation_s=deviation,
        regression_error=0.0,
    )


@settings(max_examples=60, deadline=None)
@given(
    x=st.floats(min_value=1.0, max_value=400.0),
    loss=st.floats(min_value=0.0, max_value=0.3),
    gradient=st.floats(min_value=0.0, max_value=0.5),
    deviation=st.floats(min_value=0.0, max_value=0.05),
)
def test_property_concavity_in_own_rate(x, loss, gradient, deviation):
    """u(x) is concave: the chord never exceeds the midpoint value.

    (With fixed penalty signals, as in the Appendix A model where each
    sender treats the others' contribution as given.)
    """
    for utility in (PrimaryUtility(), ScavengerUtility(), VivaceUtility()):
        lo, hi = 0.8 * x, 1.2 * x
        mid = 0.5 * (lo + hi)
        u_lo = utility(metrics(lo, loss, gradient, deviation))
        u_hi = utility(metrics(hi, loss, gradient, deviation))
        u_mid = utility(metrics(mid, loss, gradient, deviation))
        assert u_mid >= 0.5 * (u_lo + u_hi) - 1e-9


@settings(max_examples=60, deadline=None)
@given(
    x=st.floats(min_value=0.5, max_value=400.0),
    penalty=st.floats(min_value=0.0, max_value=0.5),
)
def test_property_penalties_linear_in_rate(x, penalty):
    """The loss/gradient/deviation penalties scale linearly with x."""
    u = PrimaryUtility()
    base_lo = u(metrics(x)) - u(metrics(x, loss=penalty))
    base_hi = u(metrics(2 * x)) - u(metrics(2 * x, loss=penalty))
    assert base_hi == pytest.approx(2 * base_lo, rel=1e-6)
    s = ScavengerUtility()
    dev_lo = s(metrics(x)) - s(metrics(x, deviation=0.01))
    dev_hi = s(metrics(2 * x)) - s(metrics(2 * x, deviation=0.01))
    assert dev_hi == pytest.approx(2 * dev_lo, rel=1e-6)


@settings(max_examples=40, deadline=None)
@given(
    x=st.floats(min_value=0.5, max_value=200.0),
    threshold=st.floats(min_value=1.0, max_value=150.0),
    deviation=st.floats(min_value=0.0, max_value=0.02),
)
def test_property_hybrid_is_exactly_one_of_its_pieces(x, threshold, deviation):
    h = HybridUtility(threshold_bps=threshold * 1e6)
    m = metrics(x, deviation=deviation)
    value = h(m)
    p = h.primary(m)
    s = h.scavenger(m)
    assert value == pytest.approx(p) or value == pytest.approx(s)
    if x < threshold:
        assert value == pytest.approx(p)
    else:
        assert value == pytest.approx(s)


@settings(max_examples=40, deadline=None)
@given(
    x=st.floats(min_value=1.0, max_value=300.0),
    grad=st.floats(min_value=-0.5, max_value=0.5),
)
def test_property_p_and_vivace_agree_on_nonnegative_gradient(x, grad):
    """Eq. 1's only change is ignoring negative gradients."""
    p = PrimaryUtility()
    v = VivaceUtility()
    m = metrics(x, gradient=grad)
    if grad >= 0:
        assert p(m) == pytest.approx(v(m))
    else:
        assert p(m) <= v(m)
