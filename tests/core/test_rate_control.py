"""Unit tests for the gradient-ascent rate controller."""

import random

import pytest

from repro.core import MonitorInterval, RateControlConfig, RateController


def feed(controller, rate_bps, utility, tag=None):
    """Create a completed MI at (rate, utility) and feed it in."""
    mi = MonitorInterval(0, rate_bps, 0.0, 0.03)
    mi.tag = tag
    controller.on_result(mi, utility)


def drive_concave(controller, peak_mbps, n_steps=400):
    """Drive the controller against u(x) = -(x - peak)^2 (concave)."""
    for _ in range(n_steps):
        rate, tag = controller.next_rate()
        x = rate / 1e6
        feed(controller, rate, -((x - peak_mbps) ** 2), tag)
    return controller.rate_bps / 1e6


def test_starting_doubles_until_utility_drops():
    controller = RateController(1e6, rng=random.Random(0))
    assert controller.state == "STARTING"
    rates = []
    # Utility increases with rate up to 8 Mbps, then collapses.
    for _ in range(6):
        rate, tag = controller.next_rate()
        rates.append(rate)
        utility = rate / 1e6 if rate <= 8e6 else -100.0
        feed(controller, rate, utility, tag)
        if controller.state != "STARTING":
            break
    assert rates[1] == pytest.approx(2 * rates[0])
    assert controller.state == "PROBING"
    # Reverted to the last good rate (one of the earlier rates).
    assert controller.rate_bps <= 8e6 * (1 + 0.05)


def test_probing_plan_contains_paired_rates():
    controller = RateController(10e6, rng=random.Random(1))
    controller._enter_probing()
    rates = [controller.next_rate()[0] for _ in range(6)]
    hi = 10e6 * 1.05
    lo = 10e6 * 0.95
    assert sorted(set(round(r) for r in rates)) == sorted(
        {round(hi), round(lo)}
    )
    # 3 pairs by default (majority rule).
    assert len(rates) == 6
    assert controller.next_rate()[1] == "filler"


def test_vivace_mode_uses_two_pairs():
    config = RateControlConfig(probe_pairs=2, require_unanimous=True)
    controller = RateController(10e6, config, rng=random.Random(1))
    controller._enter_probing()
    tags = []
    while controller._plan:
        tags.append(controller.next_rate()[1])
    assert len(tags) == 4


def test_majority_vote_decides_direction():
    controller = RateController(10e6, rng=random.Random(2))
    controller._enter_probing()
    plan = []
    while controller._plan:
        plan.append(controller.next_rate())
    # Vote: higher rate always yields higher utility (2 of 3 suffice, give 3).
    for rate, tag in plan:
        feed(controller, rate, rate / 1e6, tag)
    assert controller.state == "MOVING"
    assert controller.rate_bps > 10e6  # moving upward


def test_inconsistent_probes_restart_probing():
    config = RateControlConfig(probe_pairs=2, require_unanimous=True)
    controller = RateController(10e6, config, rng=random.Random(3))
    controller._enter_probing()
    plan = []
    while controller._plan:
        plan.append(controller.next_rate())
    # Pair 0 says up; pair 1 says down: inconsistent.
    for rate, tag in plan:
        up = rate > 10e6
        pair = int(tag.split(":")[2])
        utility = (1.0 if up else 0.0) if pair == 0 else (0.0 if up else 1.0)
        feed(controller, rate, utility, tag)
    assert controller.state == "PROBING"
    assert controller.rate_bps == pytest.approx(10e6)


def test_moving_reverts_on_utility_drop():
    controller = RateController(10e6, rng=random.Random(4))
    drive = drive_concave(controller, peak_mbps=20.0, n_steps=60)
    assert drive > 10.0  # moved toward the peak
    # Now crash the utility: controller must fall back to probing.
    seen_states = set()
    for _ in range(10):
        rate, tag = controller.next_rate()
        feed(controller, rate, -1e9, tag)
        seen_states.add(controller.state)
    assert "PROBING" in seen_states


def test_converges_near_concave_peak():
    controller = RateController(2e6, rng=random.Random(5))
    final = drive_concave(controller, peak_mbps=30.0)
    assert final == pytest.approx(30.0, rel=0.15)


def test_converges_downward_too():
    controller = RateController(80e6, rng=random.Random(6))
    controller.state = "PROBING"
    controller._enter_probing()
    final = drive_concave(controller, peak_mbps=10.0)
    assert final == pytest.approx(10.0, rel=0.2)


def test_timeout_halves_rate():
    controller = RateController(40e6, rng=random.Random(7))
    controller.on_timeout()
    assert controller.rate_bps == pytest.approx(20e6)
    assert controller.state == "PROBING"


def test_rate_floor_enforced():
    config = RateControlConfig(min_rate_bps=64_000.0)
    controller = RateController(100_000.0, config, rng=random.Random(8))
    for _ in range(40):
        controller.on_timeout()
    assert controller.rate_bps == pytest.approx(64_000.0)


def test_discarded_probe_restarts_probing():
    controller = RateController(10e6, rng=random.Random(9))
    controller._enter_probing()
    rate, tag = controller.next_rate()
    mi = MonitorInterval(1, rate, 0.0, 0.03)
    mi.tag = tag
    round_before = controller._probe_round
    controller.on_result(mi, None)
    assert controller.state == "PROBING"
    assert controller._probe_round == round_before + 1


def test_filler_results_carry_no_weight():
    controller = RateController(10e6, rng=random.Random(10))
    controller._enter_probing()
    state = controller.state
    rate = controller.rate_bps
    for _ in range(20):
        feed(controller, rate, -1e9, "filler")
    assert controller.state == state
    assert controller.rate_bps == rate


def test_move_step_bounded_by_omega():
    config = RateControlConfig(omega_base=0.05, omega_step=0.1, omega_max=0.5)
    controller = RateController(10e6, config, rng=random.Random(11))
    controller._enter_moving(1, gradient=1e9)  # absurd gradient
    # First step bounded by omega_base of the rate.
    assert controller.rate_bps <= 10e6 * 1.05 * (1 + 1e-9)
