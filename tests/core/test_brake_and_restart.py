"""Tests for the emergency brake, startup guard, and idle-restart paths."""

import random

import pytest

from repro.core import (
    AckIntervalFilter,
    IntervalMetrics,
    MonitorInterval,
    PrimaryUtility,
    RateControlConfig,
    RateController,
)


def metrics(rate=50.0, loss=0.0, n=100):
    return IntervalMetrics(
        duration_s=0.03,
        rate_mbps=rate,
        throughput_mbps=rate * (1 - loss),
        loss_rate=loss,
        n_samples=n,
        avg_rtt_s=0.03,
        rtt_gradient=0.0,
        rtt_deviation_s=0.0,
        regression_error=0.0,
    )


def feed(controller, rate_bps, utility, tag=None, overloaded=False):
    mi = MonitorInterval(0, rate_bps, 0.0, 0.03)
    mi.tag = tag
    controller.on_result(mi, utility, overloaded=overloaded)


# ----------------------------------------------------------------------
# loss_overloaded classification
# ----------------------------------------------------------------------
def test_loss_overload_requires_heavy_loss():
    u = PrimaryUtility()
    assert not u.loss_overloaded(metrics(rate=50.0, loss=0.04))
    # x^0.9 < 11.35 * x * L at x=50 needs L > ~5.6%.
    assert u.loss_overloaded(metrics(rate=50.0, loss=0.15))


def test_loss_overload_requires_samples():
    u = PrimaryUtility()
    assert not u.loss_overloaded(metrics(rate=50.0, loss=0.5, n=5))
    assert u.loss_overloaded(metrics(rate=50.0, loss=0.5, n=50))


def test_loss_overload_zero_rate_safe():
    assert not PrimaryUtility().loss_overloaded(metrics(rate=0.0, loss=1.0))


# ----------------------------------------------------------------------
# Controller brake behaviour
# ----------------------------------------------------------------------
def test_overloaded_result_brakes_multiplicatively():
    controller = RateController(40e6, rng=random.Random(1))
    controller.state = "PROBING"
    controller._enter_probing()
    rate, tag = controller.next_rate()
    feed(controller, rate, -100.0, tag, overloaded=True)
    assert controller.rate_bps < 40e6 * 0.85
    assert controller.state == "PROBING"


def test_overload_during_starting_stops_doubling():
    controller = RateController(1e6, rng=random.Random(2))
    rate, tag = controller.next_rate()
    assert controller.state == "STARTING"
    feed(controller, rate, -100.0, tag, overloaded=True)
    assert controller.state == "PROBING"
    assert controller.rate_bps <= rate


def test_stale_overload_does_not_double_brake():
    controller = RateController(40e6, rng=random.Random(3))
    controller.state = "PROBING"
    controller._enter_probing()
    # An old MI from a higher-rate episode: rate far below current base.
    feed(controller, 10e6, -100.0, "filler", overloaded=True)
    assert controller.rate_bps == pytest.approx(40e6)


def test_brake_disabled_by_config():
    config = RateControlConfig(emergency_brake=False)
    controller = RateController(40e6, config, rng=random.Random(4))
    controller.state = "PROBING"
    controller._enter_probing()
    rate, tag = controller.next_rate()
    feed(controller, rate, -100.0, tag, overloaded=True)
    assert controller.rate_bps == pytest.approx(40e6)


def test_starting_holds_after_four_unanswered_mis():
    controller = RateController(1e6, rng=random.Random(5))
    rates = [controller.next_rate() for _ in range(8)]
    tagged = [r for r, t in rates if t.startswith("start:")]
    fillers = [r for r, t in rates if t == "filler"]
    assert len(tagged) == 4  # doubling stops without results
    assert len(fillers) == 4
    assert max(tagged) == pytest.approx(8e6)  # 1 -> 2 -> 4 -> 8


def test_restart_reenters_starting():
    controller = RateController(10e6, rng=random.Random(6))
    controller.state = "MOVING"
    controller.restart()
    assert controller.state == "STARTING"
    rate, tag = controller.next_rate()
    assert tag.startswith("start:")
    assert rate == pytest.approx(10e6)


def test_early_majority_decision_with_two_agreeing_pairs():
    controller = RateController(10e6, rng=random.Random(7))
    controller._enter_probing()
    plan = []
    while controller._plan:
        plan.append(controller.next_rate())
    # Feed only the first two pairs, both voting "up".
    fed = 0
    for rate, tag in plan:
        pair = int(tag.split(":")[2])
        if pair > 1:
            continue
        feed(controller, rate, rate / 1e6, tag)
        fed += 1
    assert fed == 4
    assert controller.state == "MOVING"  # decided without the third pair


# ----------------------------------------------------------------------
# ACK filter gating
# ----------------------------------------------------------------------
def test_ack_filter_ignores_sub_rtt_gaps():
    f = AckIntervalFilter()
    t = 0.0
    for _ in range(10):
        assert f.accept(t, 0.030, srtt=0.030)
        t += 0.0001
    # A 6 ms gap: 60x ratio but well below RTT scale -> no suppression.
    t += 0.006
    assert f.accept(t, 0.090, srtt=0.030)


def test_ack_filter_triggers_on_rtt_scale_gaps():
    f = AckIntervalFilter()
    t = 0.0
    for _ in range(10):
        assert f.accept(t, 0.030, srtt=0.030)
        t += 0.0001
    t += 0.020  # 200x ratio and ~RTT scale: MAC stall
    assert not f.accept(t, 0.090, srtt=0.030)


def test_ack_filter_suppression_expires():
    f = AckIntervalFilter(max_suppression_s=0.1)
    t = 0.0
    for _ in range(5):
        f.accept(t, 0.030, srtt=0.030)
        t += 0.0001
    t += 0.020
    assert not f.accept(t, 0.130, srtt=0.030)
    # RTT never recovers below the EWMA, but suppression must still end.
    t += 0.150
    assert f.accept(t, 0.130, srtt=0.030)
