"""Unit tests for per-interval metric computation (§4.2, §5)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    compute_interval_metrics,
    linear_regression,
    regression_error,
    rtt_deviation,
    rtt_gradient,
)


def test_linear_regression_exact_line():
    xs = [0.0, 1.0, 2.0, 3.0]
    ys = [1.0, 3.0, 5.0, 7.0]
    slope, intercept = linear_regression(xs, ys)
    assert slope == pytest.approx(2.0)
    assert intercept == pytest.approx(1.0)


def test_linear_regression_degenerate_cases():
    assert linear_regression([], []) == (0.0, 0.0)
    assert linear_regression([1.0], [5.0]) == (0.0, 5.0)
    # Zero x-variance.
    slope, intercept = linear_regression([2.0, 2.0], [1.0, 3.0])
    assert slope == 0.0
    assert intercept == pytest.approx(2.0)


def test_linear_regression_length_mismatch():
    with pytest.raises(ValueError):
        linear_regression([1.0], [1.0, 2.0])


def test_rtt_gradient_positive_for_growing_queue():
    sends = [i * 0.001 for i in range(50)]
    rtts = [0.030 + 0.5 * t for t in sends]  # RTT grows at 0.5 s/s
    assert rtt_gradient(sends, rtts) == pytest.approx(0.5)


def test_rtt_deviation_of_constant_is_zero():
    # Exactly zero (not float dust): the implementation clamps cancellation
    # noise so constant-RTT intervals carry no scavenger penalty.
    assert rtt_deviation([0.03] * 20) == 0.0
    assert rtt_deviation([0.03]) == 0.0
    assert rtt_deviation([]) == 0.0


def test_rtt_deviation_matches_population_std():
    rtts = [0.030, 0.032, 0.028, 0.034, 0.026]
    mean = sum(rtts) / len(rtts)
    expected = math.sqrt(sum((r - mean) ** 2 for r in rtts) / len(rtts))
    assert rtt_deviation(rtts) == pytest.approx(expected)


def test_regression_error_zero_for_perfect_fit():
    sends = [i * 0.001 for i in range(20)]
    rtts = [0.030 + 0.2 * t for t in sends]
    assert regression_error(sends, rtts, duration_s=0.03) == pytest.approx(0.0, abs=1e-9)


def test_regression_error_positive_for_noisy_samples():
    sends = [i * 0.001 for i in range(20)]
    rtts = [0.030 + (0.002 if i % 2 else -0.002) for i in range(20)]
    err = regression_error(sends, rtts, duration_s=0.03)
    assert err == pytest.approx(0.002 / 0.03, rel=0.05)


def test_compute_interval_metrics_aggregates():
    sends = [i * 0.002 for i in range(10)]
    rtts = [0.030] * 10
    metrics = compute_interval_metrics(
        duration_s=0.030,
        rate_mbps=4.0,
        bytes_acked=15_000,
        n_sent=12,
        n_lost=2,
        send_times=sends,
        rtts=rtts,
    )
    assert metrics.loss_rate == pytest.approx(2 / 12)
    assert metrics.throughput_mbps == pytest.approx(15_000 * 8 / 0.03 / 1e6)
    assert metrics.avg_rtt_s == pytest.approx(0.030)
    assert metrics.rtt_gradient == pytest.approx(0.0, abs=1e-12)
    assert metrics.rtt_deviation_s == 0.0
    assert metrics.n_samples == 10


def test_compute_interval_metrics_invalid_duration():
    with pytest.raises(ValueError):
        compute_interval_metrics(0.0, 1.0, 0, 0, 0, [], [])


def test_replace_latency_signals_only_changes_latency():
    metrics = compute_interval_metrics(
        0.03, 4.0, 1000, 2, 0, [0.0, 0.01], [0.030, 0.040]
    )
    filtered = metrics.replace_latency_signals(0.0, 0.0)
    assert filtered.rtt_gradient == 0.0
    assert filtered.rtt_deviation_s == 0.0
    assert filtered.rate_mbps == metrics.rate_mbps
    assert filtered.loss_rate == metrics.loss_rate
    assert filtered.avg_rtt_s == metrics.avg_rtt_s


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.floats(min_value=0.001, max_value=1.0), min_size=2, max_size=60)
)
def test_property_deviation_invariant_under_shift(rtts):
    shifted = [r + 5.0 for r in rtts]
    assert rtt_deviation(rtts) == pytest.approx(rtt_deviation(shifted), abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(
    slope=st.floats(min_value=-2.0, max_value=2.0),
    intercept=st.floats(min_value=0.0, max_value=1.0),
    n=st.integers(min_value=3, max_value=40),
)
def test_property_gradient_recovers_linear_trend(slope, intercept, n):
    sends = [i * 0.003 for i in range(n)]
    rtts = [intercept + slope * t for t in sends]
    assert rtt_gradient(sends, rtts) == pytest.approx(slope, abs=1e-6)
