"""Tests for the deadline-driven Proteus-H threshold policy (§2.3)."""

import pytest

from repro.core import DeadlineThresholdPolicy, ProteusSender
from repro.sim import Dumbbell, Simulator, make_rng, mbps


def test_required_rate_math():
    policy = DeadlineThresholdPolicy(total_bytes=100e6, deadline_s=100.0)
    # Nothing delivered at t=0: need 8 Mbps on average.
    assert policy.required_rate_bps(0.0, 0.0) == pytest.approx(8e6)
    # Halfway through data and time: still 8 Mbps.
    assert policy.required_rate_bps(50.0, 50e6) == pytest.approx(8e6)
    # Ahead of schedule: requirement drops.
    assert policy.required_rate_bps(25.0, 75e6) < 3e6


def test_threshold_includes_safety_margin():
    policy = DeadlineThresholdPolicy(100e6, 100.0, safety=1.5)
    assert policy.threshold_bps(0.0, 0.0) == pytest.approx(1.5 * 8e6)


def test_finished_transfer_needs_nothing():
    policy = DeadlineThresholdPolicy(100e6, 100.0)
    assert policy.required_rate_bps(10.0, 100e6) == 0.0
    assert policy.threshold_bps(10.0, 100e6) == 0.0


def test_blown_deadline_goes_full_primary():
    policy = DeadlineThresholdPolicy(100e6, 100.0)
    assert policy.threshold_bps(100.0, 50e6) == float("inf")
    assert policy.threshold_bps(150.0, 50e6) == float("inf")


def test_min_threshold_floor():
    policy = DeadlineThresholdPolicy(1e6, 1000.0, min_threshold_bps=2e6)
    assert policy.threshold_bps(0.0, 0.0) == pytest.approx(2e6)


def test_validation():
    with pytest.raises(ValueError):
        DeadlineThresholdPolicy(0.0, 10.0)
    with pytest.raises(ValueError):
        DeadlineThresholdPolicy(1e6, 0.0)
    with pytest.raises(ValueError):
        DeadlineThresholdPolicy(1e6, 10.0, safety=0.5)


def test_deadline_transfer_yields_when_ahead_of_schedule():
    """End-to-end: a hybrid flow with lots of slack scavenges; the same
    transfer with a tight deadline takes a real share."""

    def run(deadline_s: float) -> float:
        sim = Simulator()
        dumbbell = Dumbbell(sim, mbps(50.0), 0.030, 375e3, rng=make_rng(3))
        primary = dumbbell.add_flow(ProteusSender("proteus-p", seed=1), flow_id=1)
        hybrid = ProteusSender("proteus-h", seed=2)
        policy = DeadlineThresholdPolicy(total_bytes=500e6, deadline_s=deadline_s)
        flow = dumbbell.add_flow(hybrid, flow_id=2, start_time=2.0)

        def update_threshold():
            hybrid.set_threshold(
                policy.threshold_bps(sim.now, flow.stats.delivered_bytes)
            )
            if sim.now < 29.0:
                sim.schedule(1.0, update_threshold)

        sim.schedule(2.0, update_threshold)
        sim.run(until=30.0)
        del primary
        return flow.stats.throughput_bps(15.0, 30.0) / 1e6

    relaxed = run(deadline_s=2000.0)  # needs only ~2 Mbps: scavenges
    urgent = run(deadline_s=25.0)  # needs ~160 Mbps: full primary
    assert urgent > relaxed + 5.0
