"""Tests for the §7.2 noise-aware utility extension."""

import pytest

from repro.core import (
    IntervalMetrics,
    NoiseAwareScavengerUtility,
    ScavengerUtility,
    make_utility,
)


def metrics(rate=20.0, deviation=0.002, regression_err=0.0, duration=0.03):
    return IntervalMetrics(
        duration_s=duration,
        rate_mbps=rate,
        throughput_mbps=rate,
        loss_rate=0.0,
        n_samples=60,
        avg_rtt_s=0.03,
        rtt_gradient=0.0,
        rtt_deviation_s=deviation,
        regression_error=regression_err,
    )


def test_zero_noise_equals_plain_scavenger():
    plain = ScavengerUtility()
    aware = NoiseAwareScavengerUtility()
    m = metrics(regression_err=0.0)
    assert aware(m) == pytest.approx(plain(m))


def test_noisy_interval_discounts_deviation_penalty():
    plain = ScavengerUtility()
    aware = NoiseAwareScavengerUtility()
    # Residual in seconds comparable to the deviation: confidence ~0.5.
    m = metrics(deviation=0.002, regression_err=0.002 / 0.03)
    assert aware(m) > plain(m)
    # Residual dwarfing the deviation: penalty nearly vanishes.
    very_noisy = metrics(deviation=0.002, regression_err=0.02 / 0.03)
    primary_only = aware.primary(very_noisy)
    full_penalty = 1500.0 * 20.0 * 0.002  # = 60 utility units undiscounted
    assert primary_only - aware(very_noisy) < 0.02 * full_penalty


def test_clean_strong_signal_keeps_full_penalty():
    aware = NoiseAwareScavengerUtility()
    m = metrics(deviation=0.010, regression_err=0.0001)
    plain = ScavengerUtility()
    assert aware(m) == pytest.approx(plain(m), rel=0.01)


def test_discount_k_scales_sensitivity():
    gentle = NoiseAwareScavengerUtility(noise_discount_k=0.5)
    harsh = NoiseAwareScavengerUtility(noise_discount_k=4.0)
    m = metrics(deviation=0.002, regression_err=0.002 / 0.03)
    # Larger k treats the same residual as stronger noise evidence.
    assert harsh(m) > gentle(m)


def test_factory_and_validation():
    u = make_utility("proteus-s-noise-aware")
    assert isinstance(u, NoiseAwareScavengerUtility)
    assert u.uses_deviation()
    with pytest.raises(ValueError):
        NoiseAwareScavengerUtility(noise_discount_k=0.0)
