"""Suite-wide configuration.

Two devtools hooks live here:

* every test runs with runtime invariant checking enabled
  (``repro.sim.invariants``) unless a test overrides it explicitly, so
  an accounting bug in the simulator fails the whole tier-1 suite;
* ``--determinism-repeats`` controls how many times the determinism
  regression tests re-run each scenario when asserting trace equality.
"""

import os

import pytest

# Must be set before any test constructs a Simulator().
os.environ.setdefault("REPRO_CHECK_INVARIANTS", "1")


def pytest_addoption(parser):
    parser.addoption(
        "--determinism-repeats",
        action="store",
        type=int,
        default=2,
        help="runs per scenario in the determinism regression tests",
    )


@pytest.fixture
def determinism_repeats(request):
    repeats = request.config.getoption("--determinism-repeats")
    if repeats < 2:
        pytest.skip("determinism checks need at least 2 repeats")
    return repeats
