"""The stable public surface of the ``repro`` package.

Guards the API-redesign invariants: ``import repro`` is cheap (PEP 562
lazy exports, no experiment machinery at module load), every name in
``__all__`` resolves, and the three result types all satisfy the unified
``Result`` protocol.
"""

import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent / "src")

HEAVY_PREFIXES = (
    "repro.harness",
    "repro.core",
    "repro.protocols",
    "repro.apps",
    "repro.analysis",
    "repro.sim",
    "repro.devtools",
)


def test_import_repro_loads_no_heavy_modules():
    # A fresh interpreter: this process has long since imported everything.
    code = (
        "import sys; import repro; "
        "mods = [m for m in sys.modules if m.startswith('repro.')]; "
        "print('\\n'.join(mods))"
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": ""},
        check=True,
    )
    loaded = [line for line in result.stdout.splitlines() if line]
    heavy = [
        m for m in loaded if any(m == p or m.startswith(p + ".") for p in HEAVY_PREFIXES)
    ]
    assert heavy == [], f"import repro eagerly loaded: {heavy}"


def test_all_names_resolve_and_are_sorted():
    import repro

    assert repro.__all__ == sorted(repro.__all__)
    for name in repro.__all__:
        assert getattr(repro, name) is not None
    # Lazy values are the same objects as their home module's.
    from repro.harness import runner

    assert repro.run_flows is runner.run_flows
    assert repro.FlowSpec is runner.FlowSpec


def test_unknown_attribute_raises():
    import repro

    try:
        repro.definitely_not_a_name
    except AttributeError as exc:
        assert "definitely_not_a_name" in str(exc)
    else:  # pragma: no cover - defensive
        raise AssertionError("expected AttributeError")


def test_public_surface_covers_the_issue_contract():
    import repro

    for name in (
        "run_single",
        "run_pair",
        "run_flows",
        "run_homogeneous",
        "run_streaming",
        "FlowSpec",
        "Timeline",
        "TIMELINES",
        "Tracer",
        "Result",
        "MetricsRegistry",
        "obs",
    ):
        assert name in repro.__all__, name
