"""One-file smoke test of the paper's three goals (§1).

Fast, end-to-end checks of the headline behaviours — the detailed
figure-level validation lives in benchmarks/.
"""

from repro.harness import EMULAB_DEFAULT, FlowSpec, run_flows, run_single


def test_goal_1_yielding():
    """A Proteus-S flow minimally impacts a CUBIC primary."""
    paired = run_flows(
        [FlowSpec("cubic"), FlowSpec("proteus-s", start_time=4.0)],
        EMULAB_DEFAULT,
        duration_s=20.0,
    )
    solo = run_single("cubic", EMULAB_DEFAULT, duration_s=20.0)
    window = paired.measurement_window()
    ratio = paired.throughput_mbps(0, window) / solo.throughput_mbps(0, window)
    assert ratio > 0.9


def test_goal_2_performance():
    """Alone, the scavenger acts like a normal high-performance CC."""
    result = run_single("proteus-s", EMULAB_DEFAULT, duration_s=15.0)
    window = result.measurement_window()
    assert result.throughput_mbps(0, window) > 0.85 * EMULAB_DEFAULT.bandwidth_mbps
    p95 = result.stats[0].rtt_percentile(95, *window)
    assert p95 < 2.0 * EMULAB_DEFAULT.rtt_s  # no bufferbloat


def test_goal_3_flexibility():
    """One codebase: the same sender class runs all three modes."""
    from repro.core import ProteusSender

    sender = ProteusSender("proteus-s")
    sender.set_utility("proteus-p")
    sender.set_utility("proteus-h")
    sender.set_threshold(10e6)
    sender.set_utility("proteus-s")  # and back, all on one instance
    assert sender.utility.name == "proteus-s"
